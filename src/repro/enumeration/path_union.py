"""Path explanation combination: PathUnionBasic and PathUnionPrune (Section 3.3).

Given the path explanations (the ``MinP(1)`` stratum) produced by one of the
path enumeration algorithms, these routines generate every minimal explanation
of size up to ``n`` by repeatedly *merging* explanations with path
explanations (Theorem 2: each ``MinP(k)`` pattern has a covering pattern set
made of a ``MinP(k-1)`` pattern and a path).

``PathUnionBasic`` follows Algorithm 3: each round merges every explanation
produced in the previous round with every path explanation.  ``PathUnionPrune``
follows Algorithm 4: it records, for every explanation, which
``(parent, path)`` pairs generated it, and uses Theorem 3 to only attempt the
merges whose composition history shows a shared sub-component, cutting the
number of merge calls substantially.

The merge is implemented in two phases so the union algorithms can skip the
(expensive) instance join for candidate patterns that are already known:

1. :func:`_merge_candidates` enumerates the partial one-to-one variable
   mappings, applies cheap pruning (size limit, assignment-set overlap) and
   builds the merged pattern;
2. :func:`_join_instances` hash-joins the two instance sets over the matched
   variables, enforcing subgraph (injective) semantics.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Iterator

from repro.core.explanation import Explanation
from repro.core.instance import ExplanationInstance
from repro.core.isomorphism import DuplicateRegistry
from repro.core.pattern import END, START, ExplanationPattern, PatternEdge, fresh_variable
from repro.errors import EnumerationError
from repro.resilience.deadline import current_deadline

__all__ = [
    "MergeStats",
    "merge_explanations",
    "path_union_basic",
    "path_union_prune",
    "PATH_UNION_ALGORITHMS",
]


@dataclass
class MergeStats:
    """Work counters exposed for the Figure 7 benchmark and the ablations."""

    merge_calls: int = 0
    mappings_tried: int = 0
    instance_joins: int = 0
    explanations_produced: int = 0
    duplicates_discarded: int = 0
    rounds: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "merge_calls": self.merge_calls,
            "mappings_tried": self.mappings_tried,
            "instance_joins": self.instance_joins,
            "explanations_produced": self.explanations_produced,
            "duplicates_discarded": self.duplicates_discarded,
            "rounds": self.rounds,
        }


#: One candidate merged pattern plus the bookkeeping to join instances, as a
#: plain ``(pattern, matched, rename)`` tuple: the merged
#: :class:`ExplanationPattern`, the ``(left variable, right variable)`` pairs
#: sorted by left variable, and the right-variable -> merged-name mapping.
#: A tuple rather than a dataclass because candidate generation sits on the
#: union's hottest path (and the compiled kernel re-emits cached candidates
#: without constructing anything).
_MergeCandidate = tuple


def _merge_info(explanation: Explanation) -> tuple:
    """Per-explanation constants of the merge step, computed once.

    Returns ``(sorted non-target variables, [(variable, assignment set)],
    [edge tuples], {edge keys})`` and caches the tuple on the explanation: a
    union run merges the same explanations against many partners, and this
    setup dominated the per-merge-call cost.
    """
    info = explanation.__dict__.get("_merge_info")
    if info is None:
        pattern = explanation.pattern
        variables = sorted(pattern.non_target_variables)
        info = (
            variables,
            [(variable, explanation.assignments(variable)) for variable in variables],
            [
                (edge.source, edge.target, edge.label, edge.directed)
                for edge in pattern.edges
            ],
            {edge.key() for edge in pattern.edges},
        )
        explanation.__dict__["_merge_info"] = info
    return info


def _compatible_mappings(
    left_variables: list[str],
    compatible: dict[str, list[str]],
    min_matched: int,
    max_matched: int,
) -> Iterator[tuple[tuple[str, str], ...]]:
    """Partial one-to-one mappings from ``left_variables`` onto the right
    variables each is compatible with (overlapping assignment sets).

    The start and end variables are always mapped onto each other (requirement
    (1) of the merge definition); requirement (4) demands at least one matched
    non-target pair, which guarantees the merged pattern is non-decomposable.
    Mappings are yielded as ``((left, right), ...)`` pair tuples sorted by the
    left variable, in the same order the exhaustive subset-by-permutation
    enumeration would produce the surviving ones, so the pruning is invisible
    downstream; pairs with disjoint assignment sets (the instance join would
    certainly be empty) are never generated, which is what makes PathUnion's
    candidate generation cheap on dense path sets.  Arities one to three (all
    that a size-5 pattern limit allows) are unrolled; larger subsets fall back
    to a generic depth-first search.
    """
    for matched_count in range(max(1, min_matched), max_matched + 1):
        for left_subset in itertools.combinations(left_variables, matched_count):
            if matched_count == 1:
                (variable_a,) = left_subset
                for right_a in compatible[variable_a]:
                    yield ((variable_a, right_a),)
            elif matched_count == 2:
                variable_a, variable_b = left_subset
                row_b = compatible[variable_b]
                if not row_b:
                    continue
                for right_a in compatible[variable_a]:
                    for right_b in row_b:
                        if right_b != right_a:
                            yield ((variable_a, right_a), (variable_b, right_b))
            elif matched_count == 3:
                variable_a, variable_b, variable_c = left_subset
                row_b = compatible[variable_b]
                row_c = compatible[variable_c]
                if not row_b or not row_c:
                    continue
                for right_a in compatible[variable_a]:
                    for right_b in row_b:
                        if right_b == right_a:
                            continue
                        for right_c in row_c:
                            if right_c != right_a and right_c != right_b:
                                yield (
                                    (variable_a, right_a),
                                    (variable_b, right_b),
                                    (variable_c, right_c),
                                )
            else:  # pragma: no cover - needs patterns beyond the paper's sizes
                yield from _compatible_mappings_dfs(left_subset, compatible)


def _compatible_mappings_dfs(
    left_subset: tuple[str, ...], compatible: dict[str, list[str]]
) -> Iterator[tuple[tuple[str, str], ...]]:
    """Generic fallback for subsets larger than the unrolled arities."""
    chosen: list[str] = []
    used: set[str] = set()

    def assign(index: int) -> Iterator[tuple[tuple[str, str], ...]]:
        if index == len(left_subset):
            yield tuple(zip(left_subset, chosen))
            return
        for right_variable in compatible[left_subset[index]]:
            if right_variable in used:
                continue
            used.add(right_variable)
            chosen.append(right_variable)
            yield from assign(index + 1)
            chosen.pop()
            used.remove(right_variable)

    yield from assign(0)


def _merge_candidates(
    left: Explanation,
    right: Explanation,
    size_limit: int,
    stats: MergeStats | None = None,
    left_info: tuple | None = None,
    right_info: tuple | None = None,
) -> Iterator[_MergeCandidate]:
    """Enumerate merged patterns of ``left`` and ``right`` worth joining.

    Candidates are pruned when the merged pattern would exceed the size limit
    (enforced up front through the minimum matched-pair count) and when a
    matched variable pair has disjoint assignment sets; a merge that adds no
    edge is also discarded.  ``left_info``/``right_info`` are accepted (and
    ignored) so the union loops can call the classic generator and the
    compiled kernel interchangeably.
    """
    if stats is not None:
        stats.merge_calls += 1
    left_pattern = left.pattern
    left_sorted_vars, left_assignment_sets, _, left_edge_keys = _merge_info(left)
    right_sorted_vars, right_assignment_sets, right_edge_tuples, _ = _merge_info(right)
    left_size = left_pattern.num_nodes
    right_non_target = len(right_sorted_vars)
    max_matched = min(len(left_sorted_vars), right_non_target)
    # merged size = left_size + right_non_target - matched_count, so the size
    # limit translates into a minimum number of matched pairs.
    min_matched = left_size + right_non_target - size_limit
    if max_matched == 0 or min_matched > max_matched:
        return
    # Assignment-set compatibility matrix: a matched pair whose entity sets
    # are disjoint cannot produce any joined instance, so such pairs never
    # enter the mapping enumeration at all.  Construction aborts as soon as
    # the empty rows make the minimum matched-pair count unreachable.
    needed = max(1, min_matched)
    compatible: dict[str, list[str]] = {}
    nonempty_rows = 0
    remaining_rows = len(left_assignment_sets)
    for left_variable, left_set in left_assignment_sets:
        row = [
            right_variable
            for right_variable, right_set in right_assignment_sets
            if not left_set.isdisjoint(right_set)
        ]
        compatible[left_variable] = row
        if row:
            nonempty_rows += 1
        remaining_rows -= 1
        if nonempty_rows + remaining_rows < needed:
            return

    left_variables = left_pattern.variables
    left_edges = left_pattern.edges
    # Fresh names for unmatched right variables depend only on the left
    # pattern, so they are computed once per merge call; sorted unmatched
    # variables consume them in order, exactly as the incremental scan did.
    fresh_names: list[str] = []
    next_fresh = 0
    while len(fresh_names) < right_non_target:
        name = fresh_variable(next_fresh)
        if name not in left_variables:
            fresh_names.append(name)
        next_fresh += 1
    edge_cache: dict[tuple, PatternEdge] = {}

    for mapping_pairs in _compatible_mappings(
        left_sorted_vars, compatible, min_matched, max_matched
    ):
        if stats is not None:
            stats.mappings_tried += 1

        # Rename the right pattern so matched variables take the left name and
        # unmatched variables receive fresh names that cannot collide.
        reverse = {right_name: left_name for left_name, right_name in mapping_pairs}
        if len(mapping_pairs) == right_non_target:
            rename = reverse  # every right variable is matched
        else:
            rename = {}
            fresh_iter = iter(fresh_names)
            for variable in right_sorted_vars:
                mapped = reverse.get(variable)
                rename[variable] = mapped if mapped is not None else next(fresh_iter)

        new_edges: list[PatternEdge] = []
        for source, target, label, directed in right_edge_tuples:
            renamed_source = rename.get(source, source)
            renamed_target = rename.get(target, target)
            if directed or renamed_source <= renamed_target:
                key = (renamed_source, renamed_target, label, directed)
            else:
                key = (renamed_target, renamed_source, label, directed)
            if key in left_edge_keys:
                continue
            edge = edge_cache.get(key)
            if edge is None:
                edge = edge_cache[key] = PatternEdge(
                    renamed_source, renamed_target, label, directed
                )
            new_edges.append(edge)
        # A merge that adds no edge reproduces the left pattern and only
        # creates duplicate work downstream.
        if not new_edges:
            continue
        merged_pattern = ExplanationPattern._trusted(
            left_variables | frozenset(rename.values()),
            left_edges | frozenset(new_edges),
        )
        # pairs ascend by left variable (subsets come from the sorted
        # variable list), so they are already in the sorted order.
        yield (merged_pattern, mapping_pairs, rename)


# ---------------------------------------------------------------------------
# The compiled merge kernel
# ---------------------------------------------------------------------------
#
# On the compiled backend the union runs the same Algorithm 3/4 skeletons but
# candidate generation goes through a rewritten kernel.  Profiling shows the
# classic generator spends most of the union's time on (left, right) pairs
# that yield nothing: per call it re-derives sizes, builds the full
# compatibility matrix and enumerates mappings before discovering the pair is
# barren.  The kernel instead
#
# 1. short-circuits pairs whose *overall* entity sets are disjoint (no
#    variable pair can overlap) with a single frozenset probe;
# 2. encodes the compatibility matrix as one bitmask per left variable and
#    resolves the partial-mapping enumeration through a memoised table keyed
#    on those masks — tiny domains (paths have at most three non-target
#    variables), so the backtracking enumeration is almost always a dict hit;
# 3. memoises the pattern-space half of a merge (variable renaming, fresh
#    names, added edges, the merged pattern object) per
#    ``(left pattern, right pattern, mapping)``: explanation *shapes* recur
#    heavily across requests against one compiled KB version, and the merged
#    pattern for a shape pair is independent of the instances at hand.
#
# The produced candidate set is exactly the classic generator's (the same
# mappings survive the same pruning rules); only the work to produce it
# changes.  Instance joins are shared with the classic path.


#: Pattern value -> integer token.  Tokens turn the merge-plan cache keys
#: into int pairs: a pattern pays the (frozenset-hashing) intern lookup once
#: per *object*, not once per merge call.  Tokens come from a monotone
#: counter, so a token is globally unique for the life of the process:
#: clearing the intern table (or the plan cache) at any moment — including
#: while other serving threads are mid-union under the engine's read lock —
#: can only cause cache misses, never key aliasing.  Minting is serialised
#: by :data:`_MERGE_CACHE_LOCK`; everything else relies on the atomicity of
#: individual dict operations plus the value-equality of rebuilt entries.
_PATTERN_TOKENS: dict[ExplanationPattern, int] = {}
_TOKEN_COUNTER = itertools.count()
_MERGE_CACHE_LOCK = threading.Lock()


def _pattern_token(pattern: ExplanationPattern) -> int:
    cached = pattern.__dict__.get("_merge_token")
    if cached is not None:
        return cached
    with _MERGE_CACHE_LOCK:
        token = _PATTERN_TOKENS.get(pattern)
        if token is None:
            token = _PATTERN_TOKENS[pattern] = next(_TOKEN_COUNTER)
    pattern.__dict__["_merge_token"] = token
    return token


def _fast_info(explanation: Explanation) -> tuple:
    """Per-explanation constants of the compiled merge kernel, cached.

    ``(sorted non-target variables, aligned assignment sets, right-edge
    tuples, left-edge key set, pattern size, union of all assignment sets,
    pattern token)``.
    """
    info = explanation.__dict__.get("_fast_merge_info")
    if info is None:
        pattern = explanation.pattern
        variables = sorted(pattern.non_target_variables)
        assignment_sets = [explanation.assignments(variable) for variable in variables]
        all_entities = (
            frozenset().union(*assignment_sets) if assignment_sets else frozenset()
        )
        info = (
            tuple(variables),
            tuple(assignment_sets),
            tuple(
                (edge.source, edge.target, edge.label, edge.directed)
                for edge in pattern.edges
            ),
            {edge.key() for edge in pattern.edges},
            pattern.num_nodes,
            all_entities,
            _pattern_token(pattern),
        )
        explanation.__dict__["_fast_merge_info"] = info
    return info


@lru_cache(maxsize=65536)
def _mapping_table(
    masks: tuple[int, ...], right_count: int, min_matched: int, max_matched: int
) -> tuple[tuple[tuple[int, int], ...], ...]:
    """All partial one-to-one index mappings compatible with ``masks``.

    ``masks[i]`` has bit ``j`` set when left variable ``i`` may map onto
    right variable ``j``.  Mappings are ``((left_index, right_index), ...)``
    tuples ordered exactly like the classic enumeration: ascending matched
    count, left subsets in combination order, right choices in index order.
    """
    left_count = len(masks)
    results: list[tuple[tuple[int, int], ...]] = []
    rights_of = [
        [j for j in range(right_count) if mask >> j & 1] for mask in masks
    ]
    for matched_count in range(max(1, min_matched), max_matched + 1):
        for left_subset in itertools.combinations(range(left_count), matched_count):
            chosen: list[int] = []

            def assign(position: int) -> None:
                if position == len(left_subset):
                    results.append(tuple(zip(left_subset, chosen)))
                    return
                for right_index in rights_of[left_subset[position]]:
                    if right_index in chosen:
                        continue
                    chosen.append(right_index)
                    assign(position + 1)
                    chosen.pop()

            assign(0)
    return tuple(results)


#: (left pattern, right pattern) -> {mapping index pairs -> (merged pattern |
#: None, rename, mapping names)}.  Pattern-space only, so safe to share
#: across pairs and requests; two-level so the (comparatively expensive)
#: pattern-pair key is hashed once per merge call, not once per mapping.
#: Cleared wholesale when it outgrows its cap.
_MERGE_PLAN_CACHE: dict[tuple, dict] = {}
_MERGE_PLAN_CACHE_CAP = 1 << 15


def _build_merge_plan(
    left_pattern: ExplanationPattern,
    right_sorted_vars: tuple[str, ...],
    right_edge_tuples: tuple,
    left_edge_keys: set,
    mapping_names: tuple[tuple[str, str], ...],
) -> tuple[ExplanationPattern | None, dict[str, str]]:
    """The pattern-space half of one merge candidate (classic semantics)."""
    left_variables = left_pattern.variables
    reverse = {right_name: left_name for left_name, right_name in mapping_names}
    if len(mapping_names) == len(right_sorted_vars):
        rename = reverse
    else:
        fresh_names: list[str] = []
        next_fresh = 0
        while len(fresh_names) < len(right_sorted_vars):
            name = fresh_variable(next_fresh)
            if name not in left_variables:
                fresh_names.append(name)
            next_fresh += 1
        rename = {}
        fresh_iter = iter(fresh_names)
        for variable in right_sorted_vars:
            mapped = reverse.get(variable)
            rename[variable] = mapped if mapped is not None else next(fresh_iter)
    new_edges: list[PatternEdge] = []
    for source, target, label, directed in right_edge_tuples:
        renamed_source = rename.get(source, source)
        renamed_target = rename.get(target, target)
        if directed or renamed_source <= renamed_target:
            key = (renamed_source, renamed_target, label, directed)
        else:
            key = (renamed_target, renamed_source, label, directed)
        if key in left_edge_keys:
            continue
        new_edges.append(PatternEdge(renamed_source, renamed_target, label, directed))
    if not new_edges:
        # Reproduces the left pattern; the classic generator discards it too.
        return (None, rename)
    merged = ExplanationPattern._trusted(
        left_variables | frozenset(rename.values()),
        left_pattern.edges | frozenset(new_edges),
    )
    return (merged, rename)


def _merge_candidates_fast(
    left: Explanation,
    right: Explanation,
    size_limit: int,
    stats: MergeStats | None = None,
    left_info: tuple | None = None,
    right_info: tuple | None = None,
) -> list[_MergeCandidate]:
    """Compiled-kernel candidate generation; same candidates as the classic.

    The union loops hoist ``left_info``/``right_info`` (see :func:`_fast_info`)
    and the overall-disjointness skip out of this call; when invoked directly
    both are derived here.
    """
    if stats is not None:
        stats.merge_calls += 1
    if left_info is None:
        left_info = _fast_info(left)
    if right_info is None:
        right_info = _fast_info(right)
    left_vars, left_sets, _, left_edge_keys, left_size, left_all, left_token = left_info
    right_vars, right_sets, right_edges, _, _, right_all, right_token = right_info
    right_non_target = len(right_vars)
    left_count = len(left_vars)
    max_matched = left_count if left_count < right_non_target else right_non_target
    min_matched = left_size + right_non_target - size_limit
    if max_matched == 0 or min_matched > max_matched:
        return []
    if left_all.isdisjoint(right_all):
        return []
    needed = min_matched if min_matched > 1 else 1
    masks: list[int] = []
    nonempty = 0
    remaining = len(left_sets)
    for left_set in left_sets:
        mask = 0
        bit = 1
        for right_set in right_sets:
            if not left_set.isdisjoint(right_set):
                mask |= bit
            bit <<= 1
        masks.append(mask)
        if mask:
            nonempty += 1
        remaining -= 1
        if nonempty + remaining < needed:
            return []
    mappings = _mapping_table(tuple(masks), right_non_target, min_matched, max_matched)
    if not mappings:
        return []
    pair_key = (left_token, right_token)
    pair_plans = _MERGE_PLAN_CACHE.get(pair_key)
    if pair_plans is None:
        pair_plans = _MERGE_PLAN_CACHE[pair_key] = {}
    if stats is not None:
        stats.mappings_tried += len(mappings)
    candidates: list[_MergeCandidate] = []
    for index_pairs in mappings:
        plan = pair_plans.get(index_pairs)
        if plan is None:
            mapping_names = tuple(
                (left_vars[left_index], right_vars[right_index])
                for left_index, right_index in index_pairs
            )
            merged_pattern, rename = _build_merge_plan(
                left.pattern, right_vars, right_edges, left_edge_keys, mapping_names
            )
            plan = pair_plans[index_pairs] = (
                (merged_pattern, mapping_names, rename)
                if merged_pattern is not None
                else None
            )
        if plan is not None:
            candidates.append(plan)
    return candidates


def _maybe_trim_merge_caches() -> None:
    """Entry-point cap check for the compiled union's shared caches.

    Safe to run while other threads are mid-union: tokens are never reused
    (monotone counter), so dropping intern or plan entries can only force a
    rebuild under a fresh — still unique — token, never an aliased hit.  A
    concurrent union holding a reference to a dropped inner plan dict keeps
    filling its (now orphaned) dict and stays correct.
    """
    with _MERGE_CACHE_LOCK:
        if len(_MERGE_PLAN_CACHE) > _MERGE_PLAN_CACHE_CAP:
            _MERGE_PLAN_CACHE.clear()
        if len(_PATTERN_TOKENS) > _MERGE_PLAN_CACHE_CAP:
            _PATTERN_TOKENS.clear()


def _join_instances(
    left: Explanation,
    right: Explanation,
    candidate: _MergeCandidate,
    stats: MergeStats | None = None,
    index_cache: dict | None = None,
) -> list[ExplanationInstance]:
    """Hash-join the instance sets of ``left`` and ``right`` for a candidate.

    Instances agree on every matched variable pair and the result must remain
    injective (instances are subgraphs), so unmatched variables from the two
    sides may not collapse onto the same entity.

    ``index_cache`` (optional) memoizes the hash index built over ``right``'s
    instances per ``(right, matched-variables)`` key: the union algorithms
    join the same few path explanations against many parents, and the index
    only depends on the right side.
    """
    if stats is not None:
        stats.instance_joins += 1
    _, matched, rename = candidate
    matched_left = [pair[0] for pair in matched]
    matched_right = [pair[1] for pair in matched]
    only_left = sorted(left.pattern.non_target_variables - set(matched_left))
    only_right = sorted(
        right.pattern.non_target_variables - set(matched_right)
    )

    cache_key = (id(right), tuple(matched_right))
    right_index: dict[tuple[str, ...], list[ExplanationInstance]] | None = (
        index_cache.get(cache_key) if index_cache is not None else None
    )
    if right_index is None:
        right_index = {}
        for right_instance in right.instances:
            key = tuple(right_instance[variable] for variable in matched_right)
            right_index.setdefault(key, []).append(right_instance)
        if index_cache is not None:
            index_cache[cache_key] = right_index

    merged: list[ExplanationInstance] = []
    for left_instance in left.instances:
        key = tuple(left_instance[variable] for variable in matched_left)
        partners = right_index.get(key)
        if not partners:
            continue
        left_mapping = left_instance.mapping
        left_only_entities = {left_mapping[variable] for variable in only_left}
        for right_instance in partners:
            conflict = False
            additions: dict[str, str] = {}
            for variable in only_right:
                entity = right_instance[variable]
                if entity in left_only_entities:
                    conflict = True
                    break
                additions[rename[variable]] = entity
            if conflict:
                continue
            if len(set(additions.values())) != len(additions):
                continue
            combined = dict(left_mapping)
            combined.update(additions)
            merged.append(ExplanationInstance(combined))
    return merged


def merge_explanations(
    left: Explanation,
    right: Explanation,
    size_limit: int,
    stats: MergeStats | None = None,
) -> list[Explanation]:
    """Merge two explanations under every valid partial mapping (Algorithm 3).

    Args:
        left: an explanation whose pattern is minimal.
        right: a (path) explanation whose pattern is minimal.
        size_limit: maximum number of variables allowed in the merged pattern.
        stats: optional counters updated in place.

    Returns:
        The merged explanations with at most ``size_limit`` variables and at
        least one instance.  Instances are derived from the input instances
        (no knowledge-base evaluation happens here).
    """
    results: list[Explanation] = []
    for candidate in _merge_candidates(left, right, size_limit, stats):
        instances = _join_instances(left, right, candidate, stats)
        if not instances:
            continue
        results.append(Explanation(candidate[0], instances))
        if stats is not None:
            stats.explanations_produced += 1
    return results


def _validate_inputs(path_explanations: list[Explanation], size_limit: int) -> None:
    if size_limit < 2:
        raise EnumerationError("the pattern size limit must be at least 2")
    for explanation in path_explanations:
        if not explanation.is_path():
            raise EnumerationError(
                "path_union expects path explanations as seeds; got a non-path pattern"
            )


def path_union_basic(
    path_explanations: list[Explanation],
    size_limit: int,
    stats: MergeStats | None = None,
    compiled: bool = False,
) -> list[Explanation]:
    """PathUnionBasic (Algorithm 3).

    Every round merges each explanation produced in the previous round with
    every path explanation; duplicates (isomorphic patterns) are discarded.
    Terminates when a round produces nothing new, which is guaranteed because
    each round grows the number of edges and the size limit bounds patterns.

    With ``compiled=True`` (set by the enumeration framework when the
    knowledge base is a :class:`~repro.kb.compiled.CompiledKB`) candidate
    generation goes through the compiled merge kernel — same candidates,
    produced with bitmask compatibility tables and memoised pattern merges.

    Returns:
        All minimal explanations with at most ``size_limit`` variables and at
        least one instance, including the seed path explanations.
    """
    _validate_inputs(path_explanations, size_limit)
    stats = stats if stats is not None else MergeStats()
    merge_candidates = _merge_candidates_fast if compiled else _merge_candidates
    if compiled:
        _maybe_trim_merge_caches()

    results: list[Explanation] = []
    registry = DuplicateRegistry()
    for explanation in path_explanations:
        if explanation.pattern.num_nodes <= size_limit and registry.add(explanation.pattern):
            results.append(explanation)

    # Hoisted per-path constants: size eligibility, and (compiled only) the
    # merge infos driving the pair-level disjointness skip.
    eligible: list[tuple[Explanation, tuple | None]] = [
        (path_explanation, _fast_info(path_explanation) if compiled else None)
        for path_explanation in path_explanations
        if path_explanation.pattern.num_nodes <= size_limit
    ]

    join_index_cache: dict = {}
    deadline = current_deadline()
    expand_queue = list(results)
    while expand_queue:
        stats.rounds += 1
        new_round: list[Explanation] = []
        for explanation in expand_queue:
            left_info = _fast_info(explanation) if compiled else None
            for path_explanation, right_info in eligible:
                if deadline is not None:
                    deadline.tick()
                if compiled and left_info[5].isdisjoint(right_info[5]):
                    # No variable pair can share an entity: the merge cannot
                    # produce a joinable candidate, so skip the kernel call.
                    stats.merge_calls += 1
                    continue
                for candidate in merge_candidates(
                    explanation, path_explanation, size_limit, stats,
                    left_info, right_info,
                ):
                    if candidate[0] in registry:
                        stats.duplicates_discarded += 1
                        continue
                    instances = _join_instances(
                        explanation, path_explanation, candidate, stats, join_index_cache
                    )
                    if not instances:
                        continue
                    registry.add(candidate[0])
                    merged = Explanation(candidate[0], instances)
                    stats.explanations_produced += 1
                    new_round.append(merged)
        results.extend(new_round)
        expand_queue = new_round
    return results


def path_union_prune(
    path_explanations: list[Explanation],
    size_limit: int,
    stats: MergeStats | None = None,
    compiled: bool = False,
) -> list[Explanation]:
    """PathUnionPrune (Algorithm 4).

    Identical output to :func:`path_union_basic`, but each explanation records
    the ``(parent_index, path_index)`` pairs it was generated from.  By
    Theorem 3, a ``MinP(k)`` pattern can always be produced by merging a
    ``MinP(k-1)`` parent with a path that some *sibling* sharing a
    ``MinP(k-2)`` sub-component was built from — so instead of trying every
    path against every explanation, a parent is only merged with the paths
    recorded in the histories of explanations that share a composition parent
    with it.
    """
    _validate_inputs(path_explanations, size_limit)
    stats = stats if stats is not None else MergeStats()
    merge_candidates = _merge_candidates_fast if compiled else _merge_candidates
    if compiled:
        _maybe_trim_merge_caches()

    results: list[Explanation] = []
    registry = DuplicateRegistry()
    seeds: list[Explanation] = []
    for explanation in path_explanations:
        if explanation.pattern.num_nodes <= size_limit and registry.add(explanation.pattern):
            seeds.append(explanation)
    results.extend(seeds)

    # Hoisted per-path constants (see path_union_basic).
    path_ok = [
        path_explanation.pattern.num_nodes <= size_limit
        for path_explanation in path_explanations
    ]
    path_infos = [
        _fast_info(path_explanation) if compiled and ok else None
        for path_explanation, ok in zip(path_explanations, path_ok)
    ]

    join_index_cache: dict = {}
    deadline = current_deadline()
    expand_queue: list[Explanation] = list(seeds)
    expand_history: list[list[tuple[int, int]]] = [[] for _ in seeds]
    first_round = True

    while expand_queue:
        stats.rounds += 1
        new_round: list[Explanation] = []
        new_history: list[list[tuple[int, int]]] = []
        new_index_by_key: dict[tuple, int] = {}

        # Invert the round's composition histories once (parent -> paths used
        # by any sibling built from it) instead of rescanning every history
        # for every explanation, which made the sharing test quadratic.
        paths_by_parent: dict[int, set[int]] = {}
        if not first_round:
            for history_right in expand_history:
                for parent, path_index in history_right:
                    paths_by_parent.setdefault(parent, set()).add(path_index)

        for index_left, explanation in enumerate(expand_queue):
            if first_round:
                candidate_paths = set(range(len(path_explanations)))
            else:
                candidate_paths = set()
                for parent, _ in expand_history[index_left]:
                    candidate_paths.update(paths_by_parent.get(parent, ()))

            left_info = _fast_info(explanation) if compiled else None
            for path_index in sorted(candidate_paths):
                if deadline is not None:
                    deadline.tick()
                if not path_ok[path_index]:
                    continue
                path_explanation = path_explanations[path_index]
                right_info = path_infos[path_index]
                if compiled and left_info[5].isdisjoint(right_info[5]):
                    # Entity-disjoint pair: no joinable candidate can exist.
                    stats.merge_calls += 1
                    continue
                for candidate in merge_candidates(
                    explanation, path_explanation, size_limit, stats,
                    left_info, right_info,
                ):
                    candidate_pattern = candidate[0]
                    key = candidate_pattern.canonical_key
                    if candidate_pattern in registry:
                        stats.duplicates_discarded += 1
                        # Still extend the composition history of a duplicate
                        # produced earlier in this round, as Algorithm 4 does:
                        # the history drives the next round's pruning.
                        if key in new_index_by_key:
                            new_history[new_index_by_key[key]].append(
                                (index_left, path_index)
                            )
                        continue
                    instances = _join_instances(
                        explanation, path_explanation, candidate, stats, join_index_cache
                    )
                    if not instances:
                        continue
                    registry.add(candidate_pattern)
                    merged = Explanation(candidate_pattern, instances)
                    stats.explanations_produced += 1
                    new_round.append(merged)
                    new_history.append([(index_left, path_index)])
                    new_index_by_key[key] = len(new_round) - 1

        results.extend(new_round)
        expand_queue = new_round
        expand_history = new_history
        first_round = False
    return results


#: Registry used by the enumeration framework and the benchmarks.
PATH_UNION_ALGORITHMS = {
    "basic": path_union_basic,
    "prune": path_union_prune,
}
