"""Ablation A1: how much work does PathUnionPrune's history pruning save?

Beyond the wall-clock comparison of Figure 7, this ablation counts the actual
merge work (variable mappings tried and instance joins performed) of
PathUnionBasic versus PathUnionPrune on the same path explanations, isolating
the effect of the Theorem 3 composition-history pruning from everything else.
"""

from __future__ import annotations

import pytest

from repro.enumeration.path_enum import path_enum_prioritized
from repro.enumeration.path_union import MergeStats, path_union_basic, path_union_prune

from conftest import SIZE_LIMIT


@pytest.fixture(scope="module")
def path_seed_sets(bench_kb, bench_pairs):
    """Path explanations for every medium/high pair (the interesting cases)."""
    seeds = []
    for bucket in ("medium", "high"):
        for pair in bench_pairs[bucket]:
            result = path_enum_prioritized(
                bench_kb, pair.v_start, pair.v_end, SIZE_LIMIT - 1
            )
            seeds.append(result.explanations)
    return seeds


@pytest.mark.parametrize("variant", ["union-basic", "union-prune"])
def test_ablation_union_pruning_time(benchmark, path_seed_sets, variant):
    algorithm = path_union_basic if variant == "union-basic" else path_union_prune
    benchmark.group = "ablation-union-pruning"
    benchmark.extra_info["variant"] = variant

    def run():
        stats = MergeStats()
        for seeds in path_seed_sets:
            algorithm(seeds, SIZE_LIMIT, stats)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["mappings_tried"] = stats.mappings_tried
    benchmark.extra_info["instance_joins"] = stats.instance_joins
    benchmark.extra_info["explanations_produced"] = stats.explanations_produced


def test_ablation_prune_tries_fewer_mappings(path_seed_sets):
    """The history pruning must not *increase* the merge work."""
    basic_stats, prune_stats = MergeStats(), MergeStats()
    for seeds in path_seed_sets:
        path_union_basic(seeds, SIZE_LIMIT, basic_stats)
        path_union_prune(seeds, SIZE_LIMIT, prune_stats)
    assert prune_stats.mappings_tried <= basic_stats.mappings_tried
    assert prune_stats.explanations_produced == basic_stats.explanations_produced
