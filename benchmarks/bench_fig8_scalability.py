"""Figure 8: enumeration time versus number of explanation instances.

The paper plots, for all 30 evaluation pairs, the enumeration time of the best
algorithm (PathEnumPrioritized + PathUnionPrune) against the total number of
explanation instances for the pair, and observes a linear relationship.

This benchmark reproduces the series: it enumerates every sampled pair with
the best algorithm, records ``(num_instances, elapsed_seconds)`` points and
asserts a strong positive rank correlation between the two, i.e. the time
grows (roughly linearly) with the number of instances.
"""

from __future__ import annotations

import time

from scipy import stats

from repro.enumeration.framework import enumerate_explanations

from conftest import SIZE_LIMIT


def _collect_series(kb, pairs):
    points = []
    for pair in pairs:
        started = time.perf_counter()
        result = enumerate_explanations(
            kb,
            pair.v_start,
            pair.v_end,
            size_limit=SIZE_LIMIT,
            path_algorithm="prioritized",
            union_algorithm="prune",
        )
        elapsed = time.perf_counter() - started
        points.append((result.num_instances, elapsed))
    return points


def test_fig8_time_vs_instances(benchmark, bench_kb, bench_pairs):
    all_pairs = [pair for pairs in bench_pairs.values() for pair in pairs]
    benchmark.group = "fig8-scalability"
    points = benchmark.pedantic(
        _collect_series, args=(bench_kb, all_pairs), rounds=1, iterations=1
    )

    benchmark.extra_info["series"] = [
        {"instances": instances, "seconds": round(seconds, 4)}
        for instances, seconds in sorted(points)
    ]
    instances = [point[0] for point in points]
    seconds = [point[1] for point in points]
    assert max(instances) > 0
    if len(set(instances)) > 2:
        correlation, _ = stats.spearmanr(instances, seconds)
        benchmark.extra_info["spearman_correlation"] = round(float(correlation), 3)
        # The paper reports time growing linearly with the instance count.
        assert correlation > 0.5
