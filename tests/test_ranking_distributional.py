"""Tests for pruned ranking with distribution-based measures (Section 5.3.2)."""

from __future__ import annotations

import pytest

from repro.errors import RankingError
from repro.measures.distributional import LocalDistributionMeasure
from repro.ranking.distributional_pruning import (
    rank_by_global_position,
    rank_by_local_position,
)
from repro.ranking.general import score_explanations


class TestLocalPositionRanking:
    def test_rejects_non_positive_k(self, paper_kb, brad_angelina_explanations):
        with pytest.raises(RankingError):
            rank_by_local_position(
                paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=0
            )

    def test_pruned_and_unpruned_agree_on_scores(self, paper_kb, brad_angelina_explanations):
        pruned = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=5, prune=True
        )
        full = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=5, prune=False
        )
        assert [entry.value for entry in pruned.ranked] == [
            entry.value for entry in full.ranked
        ]

    def test_matches_general_framework_with_local_measure(
        self, paper_kb, brad_angelina_explanations
    ):
        via_pruning = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=5, prune=False
        )
        via_measure = score_explanations(
            paper_kb,
            brad_angelina_explanations,
            LocalDistributionMeasure(),
            "brad_pitt",
            "angelina_jolie",
        )[:5]
        assert [entry.value for entry in via_pruning.ranked] == [
            entry.value for entry in via_measure
        ]

    def test_pruning_enumerates_no_more_bindings(self, paper_kb, winslet_dicaprio_explanations):
        pruned = rank_by_local_position(
            paper_kb,
            winslet_dicaprio_explanations,
            "kate_winslet",
            "leonardo_dicaprio",
            k=2,
            prune=True,
        )
        full = rank_by_local_position(
            paper_kb,
            winslet_dicaprio_explanations,
            "kate_winslet",
            "leonardo_dicaprio",
            k=2,
            prune=False,
        )
        assert pruned.stats["bindings_enumerated"] <= full.stats["bindings_enumerated"]

    def test_scores_are_negated_positions(self, paper_kb, brad_angelina_explanations):
        result = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=3, prune=False
        )
        for entry in result.ranked:
            assert entry.value <= 0  # positions are non-negative

    def test_returns_at_most_k(self, paper_kb, brad_angelina_explanations):
        result = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=2
        )
        assert len(result) <= 2

    def test_empty_explanations(self, paper_kb):
        result = rank_by_local_position(paper_kb, [], "brad_pitt", "angelina_jolie", k=3)
        assert len(result) == 0


class TestGlobalPositionRanking:
    def test_pruned_and_unpruned_agree_on_scores(self, paper_kb, brad_angelina_explanations):
        pruned = rank_by_global_position(
            paper_kb,
            brad_angelina_explanations,
            "brad_pitt",
            "angelina_jolie",
            k=3,
            prune=True,
            num_samples=15,
        )
        full = rank_by_global_position(
            paper_kb,
            brad_angelina_explanations,
            "brad_pitt",
            "angelina_jolie",
            k=3,
            prune=False,
            num_samples=15,
        )
        assert [entry.value for entry in pruned.ranked] == [
            entry.value for entry in full.ranked
        ]

    def test_sampling_is_deterministic(self, paper_kb, brad_angelina_explanations):
        first = rank_by_global_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie",
            k=3, num_samples=10, seed=42,
        )
        second = rank_by_global_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie",
            k=3, num_samples=10, seed=42,
        )
        assert [entry.value for entry in first.ranked] == [
            entry.value for entry in second.ranked
        ]

    def test_global_costs_more_bindings_than_local(self, paper_kb, brad_angelina_explanations):
        local = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=3, prune=False
        )
        global_ = rank_by_global_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie",
            k=3, prune=False, num_samples=20,
        )
        assert global_.stats["bindings_enumerated"] > local.stats["bindings_enumerated"]

    def test_pruned_out_counter(self, paper_kb, winslet_dicaprio_explanations):
        pruned = rank_by_global_position(
            paper_kb,
            winslet_dicaprio_explanations,
            "kate_winslet",
            "leonardo_dicaprio",
            k=1,
            prune=True,
            num_samples=10,
        )
        assert pruned.stats["pruned_out"] >= 0
