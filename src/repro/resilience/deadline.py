"""Per-request deadline budgets with cooperative cancellation checkpoints.

A request that cannot finish in time should stop burning a core, not keep
running to completion for a client that has already given up.  The design
mirrors :mod:`repro.obs.trace`: the budget travels in a context variable, the
hot paths read it **once** into a local at function entry, and when no
deadline is armed that read is the entire cost — enumeration output stays
byte-identical and effectively free.

* :class:`Deadline` wraps a monotonic expiry.  :meth:`Deadline.check` raises
  :class:`~repro.errors.DeadlineExceeded` once expired; :meth:`Deadline.tick`
  amortises the clock read over ``stride`` calls for the innermost loops
  (frontier expansions, matcher backtracking steps, sweep starts).
* :func:`current_deadline` returns the ambient deadline or ``None``.  Hot
  paths use the idiom::

      deadline = current_deadline()
      ...
      if deadline is not None:
          deadline.tick()

* :func:`deadline_scope` arms a budget for a ``with`` block;
  :func:`activate_deadline` / :func:`deactivate_deadline` are the token form
  used when entry and exit are in different frames (worker processes).

Checkpoints are *cooperative*: a C-level sort or a SQLite query runs to
completion before the next checkpoint fires, so callers get "deadline plus
one work quantum", not preemption.  The serving layer adds a grace window on
top (see ``docs/robustness.md``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from ..errors import DeadlineExceeded

__all__ = [
    "DEFAULT_TICK_STRIDE",
    "Deadline",
    "activate_deadline",
    "current_deadline",
    "deactivate_deadline",
    "deadline_scope",
]

#: Clock reads are amortised over this many :meth:`Deadline.tick` calls.
#: At ~10M ticks/s of enumeration work a stride of 64 bounds the detection
#: lag to microseconds while keeping the common case a single decrement.
DEFAULT_TICK_STRIDE = 64

_ACTIVE: ContextVar["Deadline | None"] = ContextVar("rex_active_deadline", default=None)


class Deadline:
    """A monotonic expiry shared by every layer that serves one request."""

    __slots__ = ("budget_s", "expires_at", "_countdown", "_stride")

    def __init__(
        self,
        budget_s: float,
        *,
        clock: float | None = None,
        stride: int = DEFAULT_TICK_STRIDE,
    ) -> None:
        if budget_s <= 0:
            raise DeadlineExceeded(budget_s)
        self.budget_s = float(budget_s)
        start = time.monotonic() if clock is None else clock
        self.expires_at = start + self.budget_s
        self._stride = max(1, int(stride))
        # the first tick reads the clock (an already-spent budget must trip
        # even when the whole computation makes fewer than `stride` ticks);
        # after that, every stride-th tick does
        self._countdown = 1

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(self.budget_s)

    def tick(self) -> None:
        """Strided :meth:`check` for the innermost loops.

        Only every ``stride``-th call reads the clock; the rest are a single
        integer decrement, which keeps armed-deadline overhead inside the
        3% envelope the resilience benchmark gates.
        """
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self._stride
            if time.monotonic() >= self.expires_at:
                raise DeadlineExceeded(self.budget_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget_s={self.budget_s}, remaining={self.remaining():.3f})"


def current_deadline() -> "Deadline | None":
    """The deadline armed in this context, or ``None``."""
    return _ACTIVE.get()


def activate_deadline(deadline: "Deadline") -> object:
    """Arm ``deadline`` for this context; returns a reset token."""
    return _ACTIVE.set(deadline)


def deactivate_deadline(token: object) -> None:
    """Undo :func:`activate_deadline` with the token it returned."""
    _ACTIVE.reset(token)  # type: ignore[arg-type]


@contextmanager
def deadline_scope(budget_s: float | None) -> Iterator["Deadline | None"]:
    """Arm a fresh deadline for the block; ``None`` budget is a no-op scope."""
    if budget_s is None:
        yield None
        return
    deadline = Deadline(budget_s)
    token = _ACTIVE.set(deadline)
    try:
        yield deadline
    finally:
        _ACTIVE.reset(token)
