"""Cross-process trace propagation and tracing/output equivalence tests.

The batch executor ships the coordinator's trace ID into each worker, the
workers record their own span trees, and the coordinator grafts them back
under its ``dispatch`` span.  These tests pin that whole loop — plus the
invariant that tracing never changes the answers.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.obs.trace import Tracer
from repro.service.engine import ExplanationEngine
from repro.service.serialize import outcome_to_dict

REQUESTS = [{"start": start, "end": end, "k": 5} for start, end in PAPER_PAIRS[:4]]


def _canonical(outcomes) -> str:
    """Serialized outcomes minus ``elapsed_s`` (wall time differs run to run)."""
    documents = []
    for outcome in outcomes:
        document = outcome_to_dict(outcome)
        document.pop("elapsed_s", None)
        documents.append(document)
    return json.dumps(documents, sort_keys=True)


@pytest.fixture()
def traced_parallel_engine():
    engine = ExplanationEngine(
        paper_example_kb(),
        size_limit=4,
        parallelism=2,
        tracer=Tracer(sample_rate=1.0),
    )
    try:
        yield engine
    finally:
        engine.close()


class TestWorkerSpanPropagation:
    def test_batch_yields_one_trace_with_worker_spans(self, traced_parallel_engine):
        engine = traced_parallel_engine
        outcomes = engine.explain_batch(REQUESTS)
        assert len(outcomes) == len(REQUESTS)

        batch_traces = [
            trace
            for trace in engine.tracer.recent()
            if trace["name"] == "explain_batch"
        ]
        assert len(batch_traces) == 1, "one batch must record exactly one trace"
        trace = batch_traces[0]
        spans = trace["spans"]
        by_index = {index: node for index, node in enumerate(spans)}

        dispatch_indices = [
            index for index, node in enumerate(spans) if node["name"] == "dispatch"
        ]
        assert len(dispatch_indices) == 1
        dispatch_index = dispatch_indices[0]
        dispatch = by_index[dispatch_index]

        workers = [node for node in spans if node["name"] == "worker"]
        assert workers, "worker spans must be shipped back to the coordinator"
        assert all(node["parent"] == dispatch_index for node in workers)
        # at least one worker annotated its pid (they may share one process)
        pids = {node["meta"]["pid"] for node in workers if node.get("meta")}
        assert pids

        # worker phase spans are parented under their worker span, and the
        # paper's phases actually appear
        worker_indices = {
            index for index, node in enumerate(spans) if node["name"] == "worker"
        }
        child_phases = {
            node["name"] for node in spans if node["parent"] in worker_indices
        }
        assert "path_enum" in child_phases
        assert "union_merge" in child_phases

    def test_worker_spans_contained_in_dispatch_window(self, traced_parallel_engine):
        engine = traced_parallel_engine
        engine.explain_batch(REQUESTS)
        (trace,) = [
            trace
            for trace in engine.tracer.recent()
            if trace["name"] == "explain_batch"
        ]
        spans = trace["spans"]
        dispatch = next(node for node in spans if node["name"] == "dispatch")
        dispatch_start = dispatch["start_s"]
        dispatch_end = dispatch_start + dispatch["duration_s"]
        workers = [node for node in spans if node["name"] == "worker"]
        for node in workers:
            # the graft clamps clock skew: a worker can never appear to start
            # before the dispatch that launched it
            assert node["start_s"] >= dispatch_start
            # wall-clock rebasing across processes is approximate; allow a
            # generous skew bound but require containment to first order
            assert node["start_s"] + node["duration_s"] <= dispatch_end + 0.25

    def test_worker_pool_untraced_without_sampling(self):
        engine = ExplanationEngine(
            paper_example_kb(),
            size_limit=4,
            parallelism=2,
            tracer=Tracer(sample_rate=0.0),
        )
        try:
            engine.explain_batch(REQUESTS)
            assert engine.tracer.snapshot()["finished"] == 0
        finally:
            engine.close()


class TestTracingEquivalence:
    def test_outputs_byte_identical_with_and_without_tracing(self):
        """The span hooks must not change a single serialized byte."""
        engines = {
            "off": ExplanationEngine(
                paper_example_kb(), size_limit=4, tracer=Tracer(sample_rate=0.0)
            ),
            "on": ExplanationEngine(
                paper_example_kb(), size_limit=4, tracer=Tracer(sample_rate=1.0)
            ),
        }
        try:
            rendered = {
                key: _canonical(engine.explain_batch(REQUESTS))
                for key, engine in engines.items()
            }
            assert rendered["on"] == rendered["off"]
        finally:
            for engine in engines.values():
                engine.close()

    def test_parallel_outputs_byte_identical_when_traced(self):
        sequential = ExplanationEngine(
            paper_example_kb(), size_limit=4, tracer=Tracer(sample_rate=0.0)
        )
        parallel = ExplanationEngine(
            paper_example_kb(),
            size_limit=4,
            parallelism=2,
            tracer=Tracer(sample_rate=1.0),
        )
        try:
            expected = _canonical(sequential.explain_batch(REQUESTS))
            actual = _canonical(parallel.explain_batch(REQUESTS))
            assert actual == expected
        finally:
            sequential.close()
            parallel.close()

    def test_trace_fields_stay_out_of_the_wire_envelope(self):
        engine = ExplanationEngine(
            paper_example_kb(), size_limit=4, tracer=Tracer(sample_rate=1.0)
        )
        try:
            outcome = engine.explain("brad_pitt", "angelina_jolie", k=3)
            assert outcome.trace_id is not None
            envelope = outcome_to_dict(outcome)
            assert "trace_id" not in envelope
            assert "phases" not in envelope
        finally:
            engine.close()


class TestProfileCli:
    def test_phase_tree_sums_within_wall_time(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["profile", "--demo", "brad_pitt", "angelina_jolie", "--top", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "trace " in output
        assert "path_enum" in output
        footer = next(
            line for line in output.splitlines() if line.startswith("phases:")
        )
        # "phases: X.XXXms of Y.YYYms wall"
        phase_ms = float(footer.split()[1].rstrip("ms"))
        wall_ms = float(footer.split()[3].rstrip("ms"))
        assert 0.0 < phase_ms <= wall_ms + 1e-6

    def test_repeat_shows_the_warm_cache_path(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["profile", "--demo", "brad_pitt", "angelina_jolie", "--repeat", "2"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cached=False" in output
        assert "cached=True" in output

    def test_json_mode_emits_trace_documents(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["profile", "--demo", "brad_pitt", "angelina_jolie", "--json"]
        )
        assert exit_code == 0
        documents = json.loads(capsys.readouterr().out)
        assert len(documents) == 1
        assert documents[0]["name"] == "explain"
        assert {span["name"] for span in documents[0]["spans"]} >= {
            "cache_lookup",
            "path_enum",
        }
