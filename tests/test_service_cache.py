"""Tests for the versioned LRU result cache."""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import VersionedLRUCache


class FakeClock:
    """A manually advanced monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasics:
    def test_put_get_roundtrip(self):
        cache = VersionedLRUCache(capacity=4)
        cache.put("key", version=0, value="value")
        assert cache.get("key", version=0) == "value"
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = VersionedLRUCache(capacity=4)
        assert cache.get("absent", version=0) is None
        assert cache.get("absent", version=0, default="fallback") == "fallback"

    def test_version_mismatch_is_a_miss(self):
        cache = VersionedLRUCache(capacity=4)
        cache.put("key", version=3, value="stale")
        assert cache.get("key", version=4) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            VersionedLRUCache(capacity=0)

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            VersionedLRUCache(ttl_seconds=0)


class TestLRUEviction:
    def test_capacity_is_enforced(self):
        cache = VersionedLRUCache(capacity=2)
        for index in range(5):
            cache.put(index, version=0, value=index)
        assert len(cache) == 2
        assert cache.stats.evictions == 3

    def test_least_recently_used_goes_first(self):
        cache = VersionedLRUCache(capacity=2)
        cache.put("a", version=0, value=1)
        cache.put("b", version=0, value=2)
        cache.get("a", version=0)  # refresh "a"
        cache.put("c", version=0, value=3)  # evicts "b"
        assert cache.get("a", version=0) == 1
        assert cache.get("b", version=0) is None
        assert cache.get("c", version=0) == 3

    def test_put_refreshes_recency(self):
        cache = VersionedLRUCache(capacity=2)
        cache.put("a", version=0, value=1)
        cache.put("b", version=0, value=2)
        cache.put("a", version=0, value=10)  # refresh via put
        cache.put("c", version=0, value=3)  # evicts "b"
        assert cache.get("a", version=0) == 10
        assert cache.get("b", version=0) is None


class TestTTL:
    def test_expired_entries_are_misses(self):
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=4, ttl_seconds=10, clock=clock)
        cache.put("key", version=0, value="value")
        clock.advance(5)
        assert cache.get("key", version=0) == "value"
        clock.advance(6)
        assert cache.get("key", version=0) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=4, ttl_seconds=10, clock=clock)
        cache.put("key", version=0, value="value")
        assert cache.contains("key", version=0)
        clock.advance(11)
        assert not cache.contains("key", version=0)


class TestPurge:
    def test_purge_drops_only_other_versions(self):
        cache = VersionedLRUCache(capacity=8)
        cache.put("a", version=0, value=1)
        cache.put("b", version=0, value=2)
        cache.put("a", version=1, value=3)
        purged = cache.purge_versions_except(1)
        assert purged == 2
        assert cache.get("a", version=1) == 3
        assert cache.get("a", version=0) is None
        assert cache.stats.purged == 2

    def test_clear_preserves_counters(self):
        cache = VersionedLRUCache(capacity=4)
        cache.put("a", version=0, value=1)
        cache.get("a", version=0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.stats.inserts == 1


class TestScopedPurge:
    def test_survivors_are_rekeyed_everything_else_drops(self):
        cache = VersionedLRUCache(capacity=8)
        cache.put(("far", "x"), version=3, value="keep")
        cache.put(("near", "x"), version=3, value="drop")
        cache.put(("old", "x"), version=1, value="too old")
        purged, retained = cache.purge_touched(
            4,
            frozenset({"near"}),
            prev_version=3,
            survives=lambda key, dirty: key[0] not in dirty,
        )
        assert (purged, retained) == (2, 1)
        assert cache.get(("far", "x"), version=4) == "keep"
        assert cache.get(("far", "x"), version=3) is None
        assert cache.get(("near", "x"), version=4) is None
        assert cache.stats.retained == 1
        assert cache.stats.scoped_purges == 1

    def test_older_versions_never_survive(self):
        """Only prev_version entries were vetted against this delta; an entry
        two writes old must purge even if the classifier would accept it."""
        cache = VersionedLRUCache(capacity=8)
        cache.put("stale", version=2, value=1)
        purged, retained = cache.purge_touched(
            4, frozenset(), prev_version=3, survives=lambda key, dirty: True
        )
        assert (purged, retained) == (1, 0)
        assert cache.get("stale", version=4) is None

    def test_none_survivor_fn_purges_everything_stale(self):
        cache = VersionedLRUCache(capacity=8)
        cache.put("a", version=3, value=1)
        cache.put("b", version=4, value=2)
        purged, retained = cache.purge_touched(
            4, frozenset({"a"}), prev_version=3, survives=None
        )
        assert (purged, retained) == (1, 0)
        assert cache.get("b", version=4) == 2

    def test_surviving_preserves_inserted_at_and_recency(self):
        """Re-keying must not refresh the TTL clock or recency: a carried
        entry keeps its original insertion time and LRU position."""
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=2, ttl_seconds=10, clock=clock)
        cache.put("elder", version=3, value="old timer")
        clock.advance(6)
        cache.put("younger", version=3, value="fresh")
        cache.purge_touched(
            4, frozenset(), prev_version=3, survives=lambda key, dirty: True
        )
        # TTL continues from the original insert: 6 + 5 > 10 only for elder
        clock.advance(5)
        assert cache.get("elder", version=4) is None
        assert cache.stats.expirations == 1
        assert cache.get("younger", version=4) == "fresh"
        # recency kept: elder (never re-put) would have been LRU-first
        cache.put("c", version=4, value=3)
        cache.put("d", version=4, value=4)
        assert cache.get("younger", version=4) is None  # evicted before d
        assert cache.get("d", version=4) == 4

    def test_expired_entries_count_as_expirations_not_purges(self):
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=4, ttl_seconds=10, clock=clock)
        cache.put("dead", version=3, value=1)
        clock.advance(11)
        cache.put("alive", version=3, value=2)
        purged, retained = cache.purge_touched(
            4, frozenset(), prev_version=3, survives=lambda key, dirty: True
        )
        assert (purged, retained) == (0, 1)
        assert cache.stats.expirations == 1
        assert cache.stats.purged == 0
        # the expired entry is gone for good, not resurrected at any version
        assert cache.get("dead", version=4) is None
        assert cache.get("dead", version=3) is None
        assert len(cache) == 1

    def test_expired_entries_do_not_survive_even_when_classifier_says_yes(self):
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=4, ttl_seconds=10, clock=clock)
        cache.put("dead", version=3, value=1)
        clock.advance(20)
        purged, retained = cache.purge_touched(
            4, frozenset(), prev_version=3, survives=lambda key, dirty: True
        )
        assert (purged, retained) == (0, 0)
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_ttl_expiry_under_full_purge_counts_as_expiration(self):
        clock = FakeClock()
        cache = VersionedLRUCache(capacity=4, ttl_seconds=10, clock=clock)
        cache.put("dead", version=0, value=1)
        clock.advance(11)
        cache.put("live", version=0, value=2)
        purged = cache.purge_versions_except(1)
        assert purged == 1
        assert cache.stats.expirations == 1
        assert cache.stats.purged == 1


class TestObservability:
    def test_snapshot_shape(self):
        cache = VersionedLRUCache(capacity=4)
        cache.put("a", version=0, value=1)
        cache.get("a", version=0)
        cache.get("b", version=0)
        snapshot = cache.snapshot()
        assert snapshot["size"] == 1
        assert snapshot["capacity"] == 4
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5

    def test_thread_safety_smoke(self):
        cache = VersionedLRUCache(capacity=64)
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                for index in range(200):
                    cache.put((worker_id, index % 10), version=0, value=index)
                    cache.get((worker_id, index % 10), version=0)
            except Exception as error:  # pragma: no cover - only on failure
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
