"""Seeded request-stream sampling over a knowledge base.

A serving benchmark is only as honest as its workload.  This module samples
*relatable* entity pairs (endpoints of existing edges, so at least the
single-edge explanation exists) and expands them into explain-request streams
with the skew of a real search results page: a small set of popular pairs
requested over and over, a long tail requested once.

Everything is driven by an explicit stdlib ``random`` seed, so a stream is a
value that tests can regenerate and compare against.
"""

from __future__ import annotations

import random
from typing import Any, Sequence

from repro.errors import KnowledgeBaseError
from repro.kb.graph import KnowledgeBase

__all__ = ["sample_connected_pairs", "sample_request_stream"]


def sample_connected_pairs(
    kb: KnowledgeBase,
    count: int,
    seed: int = 0,
    hub_bias: int = 0,
) -> list[tuple[str, str]]:
    """Sample ``count`` distinct entity pairs that share at least one edge.

    Args:
        kb: the knowledge base to sample from.
        count: number of distinct pairs to return.
        seed: RNG seed.
        hub_bias: tournament size minus one — for each pair, ``hub_bias + 1``
            candidate edges are drawn and the one with the largest endpoint
            degree sum wins.  ``0`` samples edges uniformly; larger values
            skew toward hub entities (heavier requests).

    Raises:
        KnowledgeBaseError: when the KB has no edges or fewer than ``count``
            distinct endpoint pairs.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if hub_bias < 0:
        raise ValueError(f"hub_bias must be >= 0, got {hub_bias}")
    edges = list(kb.edges())
    if not edges:
        raise KnowledgeBaseError("cannot sample pairs from a knowledge base with no edges")
    rng = random.Random(seed)
    pairs: list[tuple[str, str]] = []
    seen: set[tuple[str, str]] = set()
    attempts = 0
    max_attempts = max(1000, 50 * count)
    while len(pairs) < count:
        attempts += 1
        if attempts > max_attempts:
            raise KnowledgeBaseError(
                f"could not sample {count} distinct connected pairs "
                f"(found {len(pairs)} after {attempts} attempts)"
            )
        best = None
        best_cost = -1
        for _ in range(hub_bias + 1):
            edge = edges[rng.randrange(len(edges))]
            cost = kb.degree(edge.source) + kb.degree(edge.target)
            if cost > best_cost:
                best, best_cost = edge, cost
        assert best is not None
        pair = (best.source, best.target)
        if pair not in seen and (pair[1], pair[0]) not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs


def sample_request_stream(
    kb: KnowledgeBase,
    count: int,
    seed: int = 0,
    unique_pairs: int | None = None,
    hub_bias: int = 0,
    measures: Sequence[str] = ("size+monocount",),
    k_choices: Sequence[int] = (3, 5),
    size_limit: int | None = None,
) -> list[dict[str, Any]]:
    """Sample a stream of ``count`` explain requests (engine batch shape).

    First ``unique_pairs`` distinct connected pairs are drawn (default:
    ``count``, i.e. no repetition), then each request picks a pair with a
    Zipf-like popularity skew (pair at popularity rank ``r`` has weight
    ``1 / (r + 1)``), a measure and a ``k``.  The returned dicts use the
    ``start``/``end``/``measure``/``k``/``size_limit`` keys that
    :meth:`repro.service.ExplanationEngine.explain_batch` and
    ``POST /explain/batch`` accept.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not measures or not k_choices:
        raise ValueError("measures and k_choices must be non-empty")
    if unique_pairs is None:
        unique_pairs = count
    if not 1 <= unique_pairs <= count:
        raise ValueError(
            f"unique_pairs must be between 1 and count ({count}), got {unique_pairs}"
        )
    pairs = sample_connected_pairs(kb, unique_pairs, seed=seed, hub_bias=hub_bias)
    rng = random.Random(seed + 1)
    weights = [1.0 / (rank + 1) for rank in range(len(pairs))]
    stream: list[dict[str, Any]] = []
    # every distinct pair appears at least once; the remainder is skew-drawn
    chosen = list(pairs)
    for _ in range(count - len(pairs)):
        chosen.append(rng.choices(pairs, weights=weights, k=1)[0])
    rng.shuffle(chosen)
    for v_start, v_end in chosen:
        request: dict[str, Any] = {
            "start": v_start,
            "end": v_end,
            "measure": measures[rng.randrange(len(measures))],
            "k": k_choices[rng.randrange(len(k_choices))],
        }
        if size_limit is not None:
            request["size_limit"] = size_limit
        stream.append(request)
    return stream
