"""Tests for connectedness computation and pair sampling (Section 5.1)."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.evaluation.pairs import (
    CONNECTEDNESS_BUCKETS,
    EntityPair,
    bucket_for,
    connectedness,
    sample_pairs_by_connectedness,
)


class TestConnectedness:
    def test_counts_simple_paths(self, paper_kb):
        # Tom Cruise and Nicole Kidman: spouse edge + 3 shared movies within
        # length 2, plus longer paths up to length 4.
        value = connectedness(paper_kb, "tom_cruise", "nicole_kidman", length_limit=2)
        assert value == 4

    def test_length_limit_monotone(self, paper_kb):
        short = connectedness(paper_kb, "brad_pitt", "angelina_jolie", length_limit=2)
        longer = connectedness(paper_kb, "brad_pitt", "angelina_jolie", length_limit=4)
        assert longer >= short

    def test_disconnected_pair_is_zero(self, paper_kb):
        assert connectedness(paper_kb, "brad_pitt", "connie_nielsen") == 0

    def test_symmetric_for_undirected_reachability(self, paper_kb):
        forward = connectedness(paper_kb, "kate_winslet", "leonardo_dicaprio")
        backward = connectedness(paper_kb, "leonardo_dicaprio", "kate_winslet")
        assert forward == backward


class TestBucketFor:
    def test_paper_bucket_boundaries(self):
        assert bucket_for(1) == "low"
        assert bucket_for(29) == "low"
        assert bucket_for(30) == "medium"
        assert bucket_for(99) == "medium"
        assert bucket_for(100) == "high"
        assert bucket_for(5000) == "high"

    def test_zero_connectedness_has_no_bucket(self):
        assert bucket_for(0) is None

    def test_bucket_names(self):
        assert set(CONNECTEDNESS_BUCKETS) == {"low", "medium", "high"}


class TestSamplePairs:
    def test_rejects_non_positive_count(self, paper_kb):
        with pytest.raises(DatasetError):
            sample_pairs_by_connectedness(paper_kb, pairs_per_bucket=0)

    def test_sampling_is_deterministic(self, tiny_synthetic_kb):
        first = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=2, seed=5, max_attempts=300
        )
        second = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=2, seed=5, max_attempts=300
        )
        assert first == second

    def test_pairs_match_their_bucket(self, tiny_synthetic_kb):
        buckets = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=2, seed=7, max_attempts=300
        )
        for bucket_name, pairs in buckets.items():
            for pair in pairs:
                assert isinstance(pair, EntityPair)
                assert pair.bucket == bucket_name
                assert bucket_for(pair.connectedness) == bucket_name

    def test_respects_pairs_per_bucket(self, tiny_synthetic_kb):
        buckets = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=2, seed=7, max_attempts=300
        )
        for pairs in buckets.values():
            assert len(pairs) <= 2

    def test_pairs_are_distinct(self, tiny_synthetic_kb):
        buckets = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=3, seed=9, max_attempts=300
        )
        all_pairs = [
            (pair.v_start, pair.v_end) for pairs in buckets.values() for pair in pairs
        ]
        assert len(all_pairs) == len(set(all_pairs))

    def test_entity_type_filter(self, tiny_synthetic_kb):
        buckets = sample_pairs_by_connectedness(
            tiny_synthetic_kb, pairs_per_bucket=2, seed=7, entity_type="person", max_attempts=300
        )
        for pairs in buckets.values():
            for pair in pairs:
                assert tiny_synthetic_kb.entity_type(pair.v_start) == "person"
                assert tiny_synthetic_kb.entity_type(pair.v_end) == "person"

    def test_unknown_entity_type_falls_back_to_all_entities(self, paper_kb):
        buckets = sample_pairs_by_connectedness(
            paper_kb, pairs_per_bucket=1, seed=1, entity_type="spaceship", max_attempts=100
        )
        assert isinstance(buckets, dict)
