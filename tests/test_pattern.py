"""Tests for explanation patterns (Definition 1) and their canonicalisation."""

from __future__ import annotations

import pytest

from repro.core.pattern import (
    END,
    START,
    ExplanationPattern,
    PatternEdge,
    fresh_variable,
    pattern_from_label_path,
)
from repro.errors import PatternError


def costar_pattern() -> ExplanationPattern:
    return ExplanationPattern.from_edges(
        [PatternEdge("?v0", START, "starring"), PatternEdge("?v0", END, "starring")]
    )


class TestPatternEdge:
    def test_rejects_self_loop(self):
        with pytest.raises(PatternError):
            PatternEdge(START, START, "starring")

    def test_rejects_empty_label(self):
        with pytest.raises(PatternError):
            PatternEdge(START, END, "")

    def test_undirected_key_normalises_order(self):
        left = PatternEdge("?v1", "?v0", "spouse", directed=False)
        right = PatternEdge("?v0", "?v1", "spouse", directed=False)
        assert left == right
        assert hash(left) == hash(right)

    def test_directed_edges_distinguish_order(self):
        assert PatternEdge(START, END, "likes") != PatternEdge(END, START, "likes")

    def test_other_and_touches(self):
        edge = PatternEdge(START, "?v0", "starring")
        assert edge.touches(START) and edge.touches("?v0") and not edge.touches(END)
        assert edge.other(START) == "?v0"
        with pytest.raises(PatternError):
            edge.other(END)

    def test_renamed(self):
        edge = PatternEdge("?v0", "?v1", "starring")
        renamed = edge.renamed({"?v0": "?x"})
        assert renamed.source == "?x" and renamed.target == "?v1"


class TestConstruction:
    def test_from_edges_infers_variables(self):
        pattern = costar_pattern()
        assert pattern.variables == {START, END, "?v0"}
        assert pattern.num_nodes == 3
        assert pattern.num_edges == 2

    def test_requires_start_and_end(self):
        with pytest.raises(PatternError):
            ExplanationPattern({START, "?v0"}, [])

    def test_edge_variables_must_be_declared(self):
        with pytest.raises(PatternError):
            ExplanationPattern({START, END}, [PatternEdge(START, "?v0", "starring")])

    def test_direct_edge_constructor(self):
        pattern = ExplanationPattern.direct_edge("spouse", directed=False)
        assert pattern.num_nodes == 2
        assert pattern.num_edges == 1
        assert pattern.is_path()

    def test_direct_edge_reverse(self):
        pattern = ExplanationPattern.direct_edge("starring", reverse=True)
        (edge,) = pattern.edges
        assert edge.source == END and edge.target == START

    def test_duplicate_edges_collapse(self):
        pattern = ExplanationPattern.from_edges(
            [PatternEdge(START, END, "knows"), PatternEdge(START, END, "knows")]
        )
        assert pattern.num_edges == 1


class TestAccessors:
    def test_non_target_variables(self):
        assert costar_pattern().non_target_variables == {"?v0"}

    def test_degree_and_neighbors(self):
        pattern = costar_pattern()
        assert pattern.degree("?v0") == 2
        assert pattern.neighbors("?v0") == {START, END}
        assert pattern.degree(END) == 1

    def test_labels(self):
        assert costar_pattern().labels() == {"starring"}

    def test_edges_of_is_sorted_and_deterministic(self):
        pattern = costar_pattern()
        edges = pattern.edges_of("?v0")
        assert edges == sorted(edges, key=lambda edge: edge.key())

    def test_iteration_is_deterministic(self):
        pattern = costar_pattern()
        assert list(pattern) == list(pattern)


class TestStructure:
    def test_is_connected(self):
        assert costar_pattern().is_connected()

    def test_disconnected_pattern(self):
        pattern = ExplanationPattern.from_edges([PatternEdge(START, "?v0", "starring")])
        assert not pattern.is_connected()  # END is isolated

    def test_is_path_true_for_two_hop(self):
        assert costar_pattern().is_path()

    def test_is_path_false_for_branching(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge("?v0", START, "starring"),
                PatternEdge("?v0", END, "starring"),
                PatternEdge("?v0", END, "director"),
            ]
        )
        assert not pattern.is_path()

    def test_path_length(self):
        assert costar_pattern().path_length() == 2
        non_path = ExplanationPattern.from_edges(
            [
                PatternEdge(START, END, "spouse", directed=False),
                PatternEdge("?v0", START, "starring"),
                PatternEdge("?v0", END, "starring"),
            ]
        )
        assert non_path.path_length() is None

    def test_simple_paths_on_diamond(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge(START, "?v0", "a"),
                PatternEdge("?v0", END, "b"),
                PatternEdge(START, "?v1", "c"),
                PatternEdge("?v1", END, "d"),
            ]
        )
        paths = pattern.simple_paths()
        assert len(paths) == 2
        assert all(len(path) == 2 for path in paths)

    def test_empty_pattern_has_no_simple_paths(self):
        pattern = ExplanationPattern.from_edges([])
        assert pattern.simple_paths() == []
        assert not pattern.is_path()


class TestRenaming:
    def test_renamed_rejects_target_rename(self):
        with pytest.raises(PatternError):
            costar_pattern().renamed({START: "?x"})

    def test_renamed_rejects_non_injective(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge(START, "?v0", "a"),
                PatternEdge("?v0", "?v1", "b"),
                PatternEdge("?v1", END, "c"),
            ]
        )
        with pytest.raises(PatternError):
            pattern.renamed({"?v0": "?v1"})

    def test_with_canonical_names(self):
        pattern = ExplanationPattern.from_edges(
            [PatternEdge("?movie", START, "starring"), PatternEdge("?movie", END, "starring")]
        )
        canonical, mapping = pattern.with_canonical_names()
        assert mapping == {"?movie": "?v0"}
        assert canonical.non_target_variables == {"?v0"}

    def test_fresh_variable_names(self):
        assert fresh_variable(0) == "?v0"
        assert fresh_variable(3) == "?v3"


class TestCanonicalisationAndIsomorphism:
    def test_isomorphic_patterns_share_canonical_key(self):
        left = costar_pattern()
        right = ExplanationPattern.from_edges(
            [PatternEdge("?x", START, "starring"), PatternEdge("?x", END, "starring")]
        )
        assert left.canonical_key == right.canonical_key
        assert left.is_isomorphic(right)

    def test_non_isomorphic_patterns_differ(self):
        left = costar_pattern()
        right = ExplanationPattern.from_edges(
            [PatternEdge("?x", START, "starring"), PatternEdge("?x", END, "director")]
        )
        assert left.canonical_key != right.canonical_key
        assert not left.is_isomorphic(right)

    def test_direction_matters_for_isomorphism(self):
        forward = ExplanationPattern.direct_edge("likes")
        backward = ExplanationPattern.direct_edge("likes", reverse=True)
        assert not forward.is_isomorphic(backward)

    def test_start_end_are_not_interchangeable(self):
        left = ExplanationPattern.from_edges(
            [PatternEdge(START, "?v0", "a"), PatternEdge("?v0", END, "b")]
        )
        right = ExplanationPattern.from_edges(
            [PatternEdge(START, "?v0", "b"), PatternEdge("?v0", END, "a")]
        )
        assert not left.is_isomorphic(right)

    def test_equality_and_hash(self):
        assert costar_pattern() == costar_pattern()
        assert hash(costar_pattern()) == hash(costar_pattern())

    def test_describe_and_repr_mention_edges(self):
        pattern = costar_pattern()
        assert "starring" in repr(pattern)
        assert "2 edges" in pattern.describe()


class TestPatternFromLabelPath:
    def test_single_edge(self):
        pattern = pattern_from_label_path([("spouse", False, True)])
        assert pattern.num_nodes == 2
        assert pattern.is_path()

    def test_direction_flags(self):
        pattern = pattern_from_label_path(
            [("starring", True, False), ("starring", True, True)]
        )
        # first edge points from the intermediate variable back to start
        edges = {(edge.source, edge.target) for edge in pattern.edges}
        assert ("?v0", START) in edges
        assert ("?v0", END) in edges

    def test_empty_path_rejected(self):
        with pytest.raises(PatternError):
            pattern_from_label_path([])
