"""Circuit breaker state machine, property-tested with a scripted clock."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.errors import RexError
from repro.resilience import CircuitBreaker, CircuitOpenError
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, STATE_GAUGE


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


def make_breaker(clock: FakeClock, **kwargs) -> CircuitBreaker:
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("recovery_time_s", 10.0)
    kwargs.setdefault("half_open_probes", 2)
    return CircuitBreaker(clock=clock, **kwargs)


class TestTransitions:
    def test_starts_closed_and_allows(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, clock):
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_streak(self, clock):
        breaker = make_breaker(clock)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_opens_after_the_recovery_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.999)
        assert breaker.state == OPEN
        clock.advance(0.001)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_only_probe_quota(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        # quota of 2 claimed, the third caller is refused
        assert not breaker.allow()

    def test_probe_failure_reopens_with_a_fresh_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        # the window restarted: 9s later it is still open, 10s later half-open
        clock.advance(9.0)
        assert breaker.state == OPEN
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_enough_probe_successes_close(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_cancel_probe_returns_the_slot_without_learning(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.cancel_probe()
        # the slot came back, the state did not move
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_failures_while_open_do_not_extend_the_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.record_failure()  # straggler from in-flight work
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN


class TestObservability:
    def test_snapshot_shape(self, clock):
        breaker = make_breaker(clock)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert snap["failure_streak"] == 0
        assert snap["failure_threshold"] == 3
        assert snap["transitions"] == {OPEN: 0, HALF_OPEN: 0, CLOSED: 0}

    def test_snapshot_counts_transitions_and_recovery(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["transitions"][OPEN] == 1
        assert 0 < snap["recovery_remaining_s"] <= 10.0

    def test_state_gauge_encoding(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state_gauge() == STATE_GAUGE[CLOSED] == 0
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state_gauge() == STATE_GAUGE[OPEN] == 2
        clock.advance(10.0)
        assert breaker.state_gauge() == STATE_GAUGE[HALF_OPEN] == 1

    def test_retry_after_tracks_the_window(self, clock):
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after_s() == pytest.approx(6.0)

    def test_circuit_open_error_pickles(self):
        error = CircuitOpenError(2.5)
        assert isinstance(error, RexError)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, CircuitOpenError)
        assert clone.retry_after_s == 2.5


class TestScriptedSequences:
    """Property-style check: a reference state machine replayed over random
    scripted event sequences must agree with the breaker at every step."""

    def _reference_step(self, state, event, clock_now):
        """A deliberately naive re-implementation used as the oracle."""
        kind, streak, opened_at, probes, probe_ok = state
        threshold, window, quota = 3, 10.0, 2
        # time-based advance first, as the breaker does on observation
        if kind == OPEN and clock_now >= opened_at + window:
            kind, probes, probe_ok = HALF_OPEN, 0, 0
        if event == "failure":
            if kind == HALF_OPEN:
                kind, opened_at, probes, probe_ok = OPEN, clock_now, 0, 0
            elif kind == CLOSED:
                streak += 1
                if streak >= threshold:
                    kind, opened_at, probes, probe_ok = OPEN, clock_now, 0, 0
        elif event == "success":
            if kind == HALF_OPEN:
                probes = max(0, probes - 1)
                probe_ok += 1
                if probe_ok >= quota:
                    kind, streak, probes, probe_ok = CLOSED, 0, 0, 0
            else:
                streak = 0
        elif event == "allow":
            if kind == HALF_OPEN and probes < quota:
                probes += 1
        return (kind, streak, opened_at, probes, probe_ok)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_event_scripts_match_the_oracle(self, seed, clock):
        rng = random.Random(seed)
        breaker = make_breaker(clock)
        state = (CLOSED, 0, 0.0, 0, 0)
        for _ in range(300):
            event = rng.choice(["failure", "success", "allow", "advance"])
            if event == "advance":
                clock.advance(rng.choice([0.5, 3.0, 10.0]))
                # observation advances open -> half_open in both machines
                if state[0] == OPEN and clock() >= state[2] + 10.0:
                    state = (HALF_OPEN, state[1], state[2], 0, 0)
                assert breaker.state == state[0]
                continue
            if event == "failure":
                breaker.record_failure()
            elif event == "success":
                breaker.record_success()
            else:
                allowed = breaker.allow()
                expected_kind = self._reference_step(state, "noop", clock())[0]
                if expected_kind == CLOSED:
                    assert allowed
                elif expected_kind == OPEN:
                    assert not allowed
            state = self._reference_step(state, event, clock())
            assert breaker.state == state[0], (seed, event)

    @pytest.mark.parametrize("seed", range(6))
    def test_breaker_always_recovers_when_the_dependency_heals(self, seed, clock):
        """From any scripted chaos prefix, a healthy dependency closes it."""
        rng = random.Random(1000 + seed)
        breaker = make_breaker(clock)
        for _ in range(100):
            action = rng.choice(["failure", "success", "advance", "allow"])
            if action == "failure":
                breaker.record_failure()
            elif action == "success":
                breaker.record_success()
            elif action == "allow":
                breaker.allow()
            else:
                clock.advance(rng.uniform(0, 12))
        # dependency heals: every outstanding or new probe now succeeds
        # (record_success also completes slots the chaos prefix claimed)
        for _ in range(30):
            if breaker.state == CLOSED:
                break
            clock.advance(10.0)
            breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED


class TestValidation:
    def test_rejects_nonsense_parameters(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time_s=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0, clock=clock)
