"""Path explanation enumeration (Section 3.2).

Path explanations are the ``MinP(1)`` stratum: explanation patterns that are
simple start-to-end paths.  The paper adapts keyword-search algorithms:

* :func:`path_enum_naive` — enumerate every simple path from the start entity
  up to the length limit and keep the ones that end at the end entity.  This
  is the ``PathEnumNaive`` strawman of Section 5.2.
* :func:`path_enum_basic` — BANKS-style bidirectional search: partial paths
  are grown concurrently from both target entities (shortest first) and joined
  when they meet at a common entity.
* :func:`path_enum_prioritized` — BANKS2-style search where the node expanded
  next is chosen by an *activation score* that penalises high-degree hubs, so
  expansion tends to wait for the cheaper side to arrive.

All three return exactly the same set of path explanations (patterns grouped
with their instances); they differ in how much work they perform, which the
``stats`` counters expose for the Figure 7 benchmark and the ablations.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.core.explanation import Explanation
from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern, PatternEdge, fresh_variable
from repro.errors import EnumerationError
from repro.kb.compiled import CompiledKB
from repro.resilience.deadline import current_deadline
from repro.kb.graph import KnowledgeBase, NeighborEntry
from repro.kb.schema import Schema

__all__ = [
    "PathStep",
    "PathInstance",
    "PathEnumResult",
    "path_enum_naive",
    "path_enum_basic",
    "path_enum_prioritized",
    "group_paths_into_explanations",
    "PATH_ENUM_ALGORITHMS",
]


@dataclass(frozen=True)
class PathStep:
    """One hop of an instance-level path.

    Attributes:
        entity: the entity reached by this hop.
        label: the relationship label of the traversed edge.
        directed: whether the relationship is directed.
        forward: for directed relations, whether the edge points in the
            direction of traversal (previous entity -> ``entity``).
    """

    entity: str
    label: str
    directed: bool
    forward: bool


@dataclass(frozen=True)
class PathInstance:
    """An instance-level simple path from the start entity to the end entity."""

    start: str
    steps: tuple[PathStep, ...]

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def nodes(self) -> tuple[str, ...]:
        return (self.start,) + tuple(step.entity for step in self.steps)

    @property
    def terminal(self) -> str:
        return self.steps[-1].entity if self.steps else self.start

    def signature(self) -> tuple:
        """Identity of the path used for de-duplication across algorithms."""
        return (self.start,) + tuple(
            (step.entity, step.label, step.directed, step.forward) for step in self.steps
        )

    def pattern_signature(self) -> tuple:
        """The label/direction sequence that defines the path's pattern."""
        return tuple((step.label, step.directed, step.forward) for step in self.steps)


@dataclass
class PathEnumResult:
    """Path explanations plus work counters for performance comparisons."""

    explanations: list[Explanation]
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def num_paths(self) -> int:
        return sum(explanation.num_instances for explanation in self.explanations)


def _step_from_entry(entry: NeighborEntry) -> PathStep:
    """Translate a knowledge-base adjacency entry into a traversal step."""
    if entry.orientation == "undirected":
        return PathStep(entry.neighbor, entry.label, directed=False, forward=True)
    return PathStep(
        entry.neighbor,
        entry.label,
        directed=True,
        forward=entry.orientation == "out",
    )


#: kb -> (kb.version, {entity: ((neighbor, PathStep), ...)}).  All three path
#: enumeration algorithms revisit the same nodes many times (exponentially so
#: for the naive forward search); translating a node's adjacency entries into
#: :class:`PathStep` objects once and reusing the frozen steps removes the
#: per-expansion allocation from the hot loop.  The cache is invalidated as a
#: whole whenever the knowledge base's mutation counter moves.
_STEP_CACHES: "WeakKeyDictionary[KnowledgeBase, tuple]" = WeakKeyDictionary()


def _steps_of(kb: KnowledgeBase, entity: str) -> tuple[tuple[str, PathStep], ...]:
    """Cached ``(neighbor, step)`` pairs for every adjacency entry of ``entity``."""
    cached = _STEP_CACHES.get(kb)
    if cached is None or cached[0] != kb.version:
        cached = (kb.version, {})
        _STEP_CACHES[kb] = cached
    per_entity = cached[1]
    steps = per_entity.get(entity)
    if steps is None:
        steps = tuple(
            (entry.neighbor, _step_from_entry(entry))
            for entry in kb.iter_neighbors(entity)
        )
        per_entity[entity] = steps
    return steps


#: CompiledKB -> {handle: ((neighbor_handle, PathStep), ...)}.  The compiled
#: twin of :data:`_STEP_CACHES`: neighbors stay integer handles (cheap
#: membership tests against the partial path's node tuple) while the frozen
#: :class:`PathStep` is pre-decoded once per adjacency entry, so materialising
#: a found path is a tuple copy.  A compiled view is immutable, so no version
#: check is needed; entries die with the view.
_COMPILED_STEP_CACHES: "WeakKeyDictionary[CompiledKB, dict]" = WeakKeyDictionary()


def _compiled_steps_of(ckb: CompiledKB, h: int) -> tuple[tuple[int, PathStep], ...]:
    """Cached ``(neighbor_handle, step)`` pairs of node ``h`` (compiled view)."""
    per_entity = _COMPILED_STEP_CACHES.get(ckb)
    if per_entity is None:
        per_entity = {}
        _COMPILED_STEP_CACHES[ckb] = per_entity
    steps = per_entity.get(h)
    if steps is None:
        names = ckb.names
        label_of = ckb.label_of
        built = []
        for nh, code in ckb.adj_pairs(h):
            built.append(
                (
                    nh,
                    PathStep(
                        names[nh],
                        label_of[code >> 2],
                        directed=bool(code & 2),
                        forward=bool(code & 1),
                    ),
                )
            )
        steps = per_entity[h] = tuple(built)
    return steps


def _path_to_pattern(path: PathInstance) -> tuple[ExplanationPattern, ExplanationInstance]:
    """Convert an instance-level path into its pattern and instance."""
    nodes = path.nodes
    variables = [START]
    for index in range(len(nodes) - 2):
        variables.append(fresh_variable(index))
    variables.append(END)
    edges = []
    binding = {START: nodes[0], END: nodes[-1]}
    for index, step in enumerate(path.steps):
        left, right = variables[index], variables[index + 1]
        binding[variables[index + 1]] = step.entity
        if step.directed and not step.forward:
            left, right = right, left
        edges.append(PatternEdge(left, right, step.label, step.directed))
    pattern = ExplanationPattern.from_edges(edges)
    return pattern, ExplanationInstance(binding)


def _path_instance(path: PathInstance) -> ExplanationInstance:
    """The instance-level binding of a path (pattern built elsewhere)."""
    nodes = path.nodes
    binding = {START: nodes[0], END: nodes[-1]}
    for index in range(1, len(nodes) - 1):
        binding[fresh_variable(index - 1)] = nodes[index]
    return ExplanationInstance(binding)


def group_paths_into_explanations(paths: list[PathInstance]) -> list[Explanation]:
    """Group instance-level paths by their pattern into path explanations.

    Paths with the same start-to-end label/direction sequence share a pattern;
    the grouping simply replaces intermediate entities with variables, as
    described at the start of Section 3.2.  The shared pattern is built once
    per signature (from the group's first path); remaining paths only
    contribute their variable binding.
    """
    grouped: dict[tuple, tuple[ExplanationPattern, list[ExplanationInstance]]] = {}
    for path in paths:
        signature = path.pattern_signature()
        entry = grouped.get(signature)
        if entry is None:
            pattern, instance = _path_to_pattern(path)
            grouped[signature] = (pattern, [instance])
        else:
            entry[1].append(_path_instance(path))
    return [Explanation(pattern, instances) for pattern, instances in grouped.values()]


def _validate(kb: KnowledgeBase, v_start: str, v_end: str, length_limit: int) -> None:
    if length_limit < 1:
        raise EnumerationError("the path length limit must be at least 1")
    if v_start == v_end:
        raise EnumerationError("the start and end entities must differ")
    if not kb.has_entity(v_start):
        raise EnumerationError(f"start entity not in knowledge base: {v_start!r}")
    if not kb.has_entity(v_end):
        raise EnumerationError(f"end entity not in knowledge base: {v_end!r}")


# ---------------------------------------------------------------------------
# PathEnumNaive
# ---------------------------------------------------------------------------


def path_enum_naive(
    kb: KnowledgeBase, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """Enumerate paths by exhaustive forward search from the start entity.

    Every length-limited simple path leaving ``v_start`` is expanded and the
    ones that reach ``v_end`` are kept.  This is the most naive strategy and
    exists as the lower baseline of Figure 7.
    """
    _validate(kb, v_start, v_end, length_limit)
    if isinstance(kb, CompiledKB):
        return _path_enum_naive_compiled(kb, v_start, v_end, length_limit)
    paths: list[PathInstance] = []
    expansions = 0
    deadline = current_deadline()

    def extend(current: str, visited: set[str], steps: list[PathStep]) -> None:
        nonlocal expansions
        if len(steps) >= length_limit:
            return
        if deadline is not None:
            deadline.tick()
        for neighbor, step in _steps_of(kb, current):
            expansions += 1
            if neighbor in visited:
                continue
            steps.append(step)
            if neighbor == v_end:
                paths.append(PathInstance(v_start, tuple(steps)))
            elif neighbor != v_start:
                visited.add(neighbor)
                extend(neighbor, visited, steps)
                visited.remove(neighbor)
            steps.pop()

    extend(v_start, {v_start, v_end} - {v_end}, [])
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


def _path_enum_naive_compiled(
    ckb: CompiledKB, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """Integer-handle twin of :func:`path_enum_naive`.

    The exhaustive forward search tracks visited nodes and the frontier as
    handles; the pre-decoded :class:`PathStep` objects of the compiled step
    cache are only assembled into a :class:`PathInstance` when a path
    actually reaches the end entity.
    """
    start_h = ckb.handles[v_start]
    end_h = ckb.handles[v_end]
    paths: list[PathInstance] = []
    expansions = 0
    deadline = current_deadline()

    def extend(current: int, visited: set[int], steps: list[PathStep]) -> None:
        nonlocal expansions
        if len(steps) >= length_limit:
            return
        if deadline is not None:
            deadline.tick()
        for neighbor, step in _compiled_steps_of(ckb, current):
            expansions += 1
            if neighbor in visited:
                continue
            steps.append(step)
            if neighbor == end_h:
                paths.append(PathInstance(v_start, tuple(steps)))
            elif neighbor != start_h:
                visited.add(neighbor)
                extend(neighbor, visited, steps)
                visited.remove(neighbor)
            steps.pop()

    extend(start_h, {start_h}, [])
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


# ---------------------------------------------------------------------------
# Shared bidirectional machinery
# ---------------------------------------------------------------------------


class _PartialPath:
    """A simple path grown from one of the two target entities.

    A plain ``__slots__`` class rather than a dataclass: the bidirectional
    searches allocate one per expansion, making construction cost part of the
    enumeration hot loop.
    """

    __slots__ = ("origin", "nodes", "steps")

    def __init__(
        self, origin: str, nodes: tuple[str, ...], steps: tuple[PathStep, ...]
    ) -> None:
        self.origin = origin  # "start" or "end"
        self.nodes = nodes
        self.steps = steps

    @property
    def terminal(self) -> str:
        return self.nodes[-1]

    @property
    def length(self) -> int:
        return len(self.steps)


def _join(forward: _PartialPath, backward: _PartialPath) -> PathInstance | None:
    """Join a start-side and an end-side partial path meeting at a node.

    Returns ``None`` when the two halves overlap anywhere other than the
    meeting node (the joined path would not be simple).
    """
    if forward.terminal != backward.terminal:
        return None
    if set(forward.nodes) & set(backward.nodes) != {forward.terminal}:
        return None
    steps = list(forward.steps)
    # Reverse the end-side path: its steps go v_end -> meeting node, we need
    # meeting node -> v_end with flipped traversal direction.
    nodes = backward.nodes
    for index in range(len(backward.steps) - 1, -1, -1):
        step = backward.steps[index]
        previous = nodes[index]
        steps.append(
            PathStep(
                entity=previous,
                label=step.label,
                directed=step.directed,
                forward=(not step.forward) if step.directed else True,
            )
        )
    return PathInstance(forward.nodes[0], tuple(steps))


def _expand_partial(
    kb: KnowledgeBase,
    partial: _PartialPath,
    v_start: str,
    v_end: str,
) -> list[_PartialPath]:
    """All one-step extensions of a partial path that keep it simple.

    Partial paths never run *through* a target entity: reaching the opposite
    target terminates the path there (it becomes a full path when joined with
    the zero-length partial path of the other side).
    """
    current = partial.terminal
    opposite = v_end if partial.origin == "start" else v_start
    own_target = v_start if partial.origin == "start" else v_end
    if current == opposite:
        return []
    extensions = []
    for neighbor, step in _steps_of(kb, current):
        if neighbor in partial.nodes or neighbor == own_target:
            continue
        extensions.append(
            _PartialPath(
                origin=partial.origin,
                nodes=partial.nodes + (neighbor,),
                steps=partial.steps + (step,),
            )
        )
    return extensions


def _collect_full_paths(
    start_side: dict[str, list[_PartialPath]],
    end_side: dict[str, list[_PartialPath]],
    length_limit: int,
) -> list[PathInstance]:
    """Join all compatible partial-path pairs into full simple paths."""
    seen: set[tuple] = set()
    paths: list[PathInstance] = []
    deadline = current_deadline()
    for terminal, forwards in start_side.items():
        backwards = end_side.get(terminal, [])
        for forward in forwards:
            if deadline is not None:
                deadline.tick()
            for backward in backwards:
                if forward.length + backward.length > length_limit:
                    continue
                if forward.length + backward.length == 0:
                    continue
                joined = _join(forward, backward)
                if joined is None:
                    continue
                signature = joined.signature()
                if signature in seen:
                    continue
                seen.add(signature)
                paths.append(joined)
    return paths


# -- compiled (integer-handle) twins of the bidirectional machinery ---------


class _PartialPathH:
    """A partial path over integer handles (compiled backend).

    ``nodes`` are entity handles (membership tests in the expansion loop are
    integer comparisons); ``steps`` are the shared pre-decoded
    :class:`PathStep` objects, so joining two halves never re-decodes labels.
    """

    __slots__ = ("origin", "nodes", "steps")

    def __init__(
        self, origin: str, nodes: tuple[int, ...], steps: tuple[PathStep, ...]
    ) -> None:
        self.origin = origin
        self.nodes = nodes
        self.steps = steps

    @property
    def terminal(self) -> int:
        return self.nodes[-1]

    @property
    def length(self) -> int:
        return len(self.steps)


def _expand_partial_compiled(
    ckb: CompiledKB, partial: _PartialPathH, start_h: int, end_h: int
) -> list[_PartialPathH]:
    """Handle twin of :func:`_expand_partial` (same simplicity rules)."""
    current = partial.nodes[-1]
    opposite = end_h if partial.origin == "start" else start_h
    own_target = start_h if partial.origin == "start" else end_h
    if current == opposite:
        return []
    extensions = []
    nodes = partial.nodes
    steps = partial.steps
    origin = partial.origin
    for neighbor, step in _compiled_steps_of(ckb, current):
        if neighbor == own_target or neighbor in nodes:
            continue
        extensions.append(
            _PartialPathH(origin, nodes + (neighbor,), steps + (step,))
        )
    return extensions


def _join_compiled(
    names: list[str], forward: _PartialPathH, backward: _PartialPathH
) -> PathInstance | None:
    """Handle twin of :func:`_join`; decodes only the joined path."""
    terminal = forward.nodes[-1]
    if terminal != backward.nodes[-1]:
        return None
    if set(forward.nodes) & set(backward.nodes) != {terminal}:
        return None
    steps = list(forward.steps)
    nodes = backward.nodes
    for index in range(len(backward.steps) - 1, -1, -1):
        step = backward.steps[index]
        steps.append(
            PathStep(
                entity=names[nodes[index]],
                label=step.label,
                directed=step.directed,
                forward=(not step.forward) if step.directed else True,
            )
        )
    return PathInstance(names[forward.nodes[0]], tuple(steps))


def _collect_full_paths_compiled(
    names: list[str],
    start_side: dict[int, list[_PartialPathH]],
    end_side: dict[int, list[_PartialPathH]],
    length_limit: int,
) -> list[PathInstance]:
    """Handle twin of :func:`_collect_full_paths`."""
    seen: set[tuple] = set()
    paths: list[PathInstance] = []
    deadline = current_deadline()
    for terminal, forwards in start_side.items():
        backwards = end_side.get(terminal, [])
        for forward in forwards:
            if deadline is not None:
                deadline.tick()
            for backward in backwards:
                if forward.length + backward.length > length_limit:
                    continue
                if forward.length + backward.length == 0:
                    continue
                joined = _join_compiled(names, forward, backward)
                if joined is None:
                    continue
                signature = joined.signature()
                if signature in seen:
                    continue
                seen.add(signature)
                paths.append(joined)
    return paths


def _path_enum_basic_compiled(
    ckb: CompiledKB, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """Integer-handle twin of :func:`path_enum_basic`."""
    start_h = ckb.handles[v_start]
    end_h = ckb.handles[v_end]
    forward_limit = math.ceil(length_limit / 2)
    backward_limit = length_limit // 2
    expansions = 0
    deadline = current_deadline()

    start_side: dict[int, list[_PartialPathH]] = {}
    end_side: dict[int, list[_PartialPathH]] = {}

    for origin, root, limit, store in (
        ("start", start_h, forward_limit, start_side),
        ("end", end_h, backward_limit, end_side),
    ):
        frontier = [_PartialPathH(origin, (root,), ())]
        store.setdefault(root, []).append(frontier[0])
        depth = 0
        while frontier and depth < limit:
            next_frontier: list[_PartialPathH] = []
            for partial in frontier:
                if deadline is not None:
                    deadline.tick()
                for extension in _expand_partial_compiled(
                    ckb, partial, start_h, end_h
                ):
                    expansions += 1
                    store.setdefault(extension.nodes[-1], []).append(extension)
                    next_frontier.append(extension)
            frontier = next_frontier
            depth += 1

    paths = _collect_full_paths_compiled(ckb.names, start_side, end_side, length_limit)
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


def _path_enum_prioritized_compiled(
    ckb: CompiledKB, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """Integer-handle twin of :func:`path_enum_prioritized`.

    The activation bookkeeping (score tables, pending index, heap entries)
    is keyed on handles; heap ordering is unchanged because the unique
    insertion counter already breaks every tie before a node id would be
    compared.
    """
    start_h = ckb.handles[v_start]
    end_h = ckb.handles[v_end]
    forward_limit = math.ceil(length_limit / 2)
    backward_limit = length_limit // 2
    limits = {"start": forward_limit, "end": backward_limit}
    expansions = 0
    degrees = ckb.degrees
    deadline = current_deadline()

    start_side: dict[int, list[_PartialPathH]] = {
        start_h: [_PartialPathH("start", (start_h,), ())]
    }
    end_side: dict[int, list[_PartialPathH]] = {
        end_h: [_PartialPathH("end", (end_h,), ())]
    }
    stores = {"start": start_side, "end": end_side}

    activations = {
        "start": {start_h: 1.0 / max(degrees[start_h], 1)},
        "end": {end_h: 1.0 / max(degrees[end_h], 1)},
    }
    pendings: dict[str, dict[int, list[_PartialPathH]]] = {
        "start": {start_h: [start_side[start_h][0]]},
        "end": {end_h: [end_side[end_h][0]]},
    }
    counter = 0
    heap: list[tuple[float, int, str, int]] = []
    for origin, per_node in activations.items():
        for node, score in per_node.items():
            heap.append((-score, counter, origin, node))
            counter += 1
    heapq.heapify(heap)

    while heap:
        negative_score, _, origin, node = heapq.heappop(heap)
        if deadline is not None:
            deadline.tick()
        pending = pendings[origin]
        waiting = pending.pop(node, None)
        if not waiting:
            continue
        score = -negative_score
        store = stores[origin]
        activation = activations[origin]
        limit = limits[origin]
        spread: dict[int, None] = {}
        for partial in waiting:
            if partial.length >= limit:
                continue
            for extension in _expand_partial_compiled(ckb, partial, start_h, end_h):
                expansions += 1
                terminal = extension.nodes[-1]
                store.setdefault(terminal, []).append(extension)
                pending.setdefault(terminal, []).append(extension)
                spread[terminal] = None
        for neighbor in spread:
            gained = score / max(degrees[neighbor], 1)
            total = activation.get(neighbor, 0.0) + gained
            activation[neighbor] = total
            heapq.heappush(heap, (-total, counter, origin, neighbor))
            counter += 1
        activation[node] = 0.0

    paths = _collect_full_paths_compiled(ckb.names, start_side, end_side, length_limit)
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


def path_enum_basic(
    kb: KnowledgeBase, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """BANKS-style bidirectional path enumeration (``PathEnumBasic``).

    Partial paths are grown breadth-first (shortest first) from both targets:
    the start side up to ``ceil(l / 2)`` hops and the end side up to
    ``floor(l / 2)`` hops, after which every pair of partial paths meeting at
    a common entity is joined into a full path.
    """
    _validate(kb, v_start, v_end, length_limit)
    if isinstance(kb, CompiledKB):
        return _path_enum_basic_compiled(kb, v_start, v_end, length_limit)
    forward_limit = math.ceil(length_limit / 2)
    backward_limit = length_limit // 2
    expansions = 0
    deadline = current_deadline()

    start_side: dict[str, list[_PartialPath]] = {}
    end_side: dict[str, list[_PartialPath]] = {}

    for origin, root, limit, store in (
        ("start", v_start, forward_limit, start_side),
        ("end", v_end, backward_limit, end_side),
    ):
        frontier = [_PartialPath(origin, (root,), ())]
        store.setdefault(root, []).append(frontier[0])
        depth = 0
        while frontier and depth < limit:
            next_frontier: list[_PartialPath] = []
            for partial in frontier:
                if deadline is not None:
                    deadline.tick()
                for extension in _expand_partial(kb, partial, v_start, v_end):
                    expansions += 1
                    store.setdefault(extension.terminal, []).append(extension)
                    next_frontier.append(extension)
            frontier = next_frontier
            depth += 1

    paths = _collect_full_paths(start_side, end_side, length_limit)
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


def path_enum_prioritized(
    kb: KnowledgeBase, v_start: str, v_end: str, length_limit: int
) -> PathEnumResult:
    """BANKS2-style prioritized bidirectional enumeration (``PathEnumPrioritized``).

    Expansion is driven by an activation score: each target entity starts with
    activation ``1 / degree`` and expanding a node spreads its activation to
    its neighbours divided by their degree.  High-degree hubs therefore
    receive little activation and are expanded late, letting the cheaper side
    of the search reach the meeting point first.  The produced path set is
    identical to :func:`path_enum_basic`; only the amount and order of work
    differs.
    """
    _validate(kb, v_start, v_end, length_limit)
    if isinstance(kb, CompiledKB):
        return _path_enum_prioritized_compiled(kb, v_start, v_end, length_limit)
    forward_limit = math.ceil(length_limit / 2)
    backward_limit = length_limit // 2
    limits = {"start": forward_limit, "end": backward_limit}
    expansions = 0
    deadline = current_deadline()

    start_side: dict[str, list[_PartialPath]] = {v_start: [_PartialPath("start", (v_start,), ())]}
    end_side: dict[str, list[_PartialPath]] = {v_end: [_PartialPath("end", (v_end,), ())]}
    stores = {"start": start_side, "end": end_side}

    # Per-origin node-keyed tables (avoids one tuple allocation + hash per
    # bookkeeping operation in the expansion loop).
    activations = {
        "start": {v_start: 1.0 / max(kb.degree(v_start), 1)},
        "end": {v_end: 1.0 / max(kb.degree(v_end), 1)},
    }
    # Index of partial paths not yet expanded, per origin and node.
    pendings: dict[str, dict[str, list[_PartialPath]]] = {
        "start": {v_start: [start_side[v_start][0]]},
        "end": {v_end: [end_side[v_end][0]]},
    }
    counter = 0
    heap: list[tuple[float, int, str, str]] = []
    for origin, per_node in activations.items():
        for node, score in per_node.items():
            heap.append((-score, counter, origin, node))
            counter += 1
    heapq.heapify(heap)

    while heap:
        negative_score, _, origin, node = heapq.heappop(heap)
        if deadline is not None:
            deadline.tick()
        pending = pendings[origin]
        waiting = pending.pop(node, None)
        if not waiting:
            continue
        score = -negative_score
        store = stores[origin]
        activation = activations[origin]
        limit = limits[origin]
        spread: dict[str, None] = {}
        for partial in waiting:
            if partial.length >= limit:
                continue
            for extension in _expand_partial(kb, partial, v_start, v_end):
                expansions += 1
                terminal = extension.terminal
                store.setdefault(terminal, []).append(extension)
                pending.setdefault(terminal, []).append(extension)
                spread[terminal] = None
        # Spread activation to the freshly reached nodes and (re-)enqueue them.
        for neighbor in spread:
            gained = score / max(kb.degree(neighbor), 1)
            total = activation.get(neighbor, 0.0) + gained
            activation[neighbor] = total
            heapq.heappush(heap, (-total, counter, origin, neighbor))
            counter += 1
        activation[node] = 0.0

    paths = _collect_full_paths(start_side, end_side, length_limit)
    explanations = group_paths_into_explanations(paths)
    return PathEnumResult(
        explanations,
        stats={"expansions": expansions, "paths": len(paths)},
    )


#: Registry used by the enumeration framework and the benchmarks.
PATH_ENUM_ALGORITHMS = {
    "naive": path_enum_naive,
    "basic": path_enum_basic,
    "prioritized": path_enum_prioritized,
}
