# Convenience entry points; see docs/performance.md for the benchmark story,
# docs/serving.md for the explanation-serving subsystem and docs/scaling.md
# for the process-parallel batch executor.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-parallel bench bench-core bench-smoke bench-check \
	serve serve-smoke bench-service bench-service-check \
	bench-parallel bench-parallel-check bench-compiled bench-compiled-check \
	bench-durability bench-durability-check bench-obs bench-obs-check \
	bench-delta bench-delta-check bench-resilience bench-resilience-check \
	bench-fleet bench-fleet-check soak-smoke

test:
	$(PYTHON) -m pytest -x -q

# The same tier-1 suite with every engine sharding batches across 2 worker
# processes (the CI matrix's second entry).
test-parallel:
	REX_PARALLELISM=2 $(PYTHON) -m pytest -x -q

# Boot the HTTP/JSON explanation server on the demo KB (blocking).
serve:
	$(PYTHON) -m repro.cli serve --demo --warmup

# CI smoke: boot on an ephemeral port, hit /healthz + one /explain, shut down.
serve-smoke:
	$(PYTHON) -m repro.cli serve --demo --smoke --warmup

# Serving-layer benchmark; writes BENCH_pr2.json (cold vs warm throughput).
bench-service:
	$(PYTHON) -m benchmarks --service-only --output BENCH_pr2.json

# Fresh serving run checked against the committed record (>2x fails).
bench-service-check:
	$(PYTHON) -m benchmarks --service-only \
		--output bench_service_fresh.json --check BENCH_pr2.json

# Full benchmark suite; writes BENCH_pr1.json (paper-sized fig11 sampling).
bench:
	REX_BENCH_GLOBAL_SAMPLES=100 $(PYTHON) -m benchmarks --output BENCH_pr1.json

# Only the fig7/fig11 benchmarks the PR-1 performance work targets.
bench-core:
	REX_BENCH_GLOBAL_SAMPLES=100 $(PYTHON) -m benchmarks --core-only --output BENCH_pr1.json

# CI-sized pass: small knobs, compare against the committed record.
bench-smoke:
	$(PYTHON) -m benchmarks --smoke --core-only --output bench_smoke.json

# Fresh paper-sized run checked against the committed record (>2x fails).
bench-check:
	REX_BENCH_GLOBAL_SAMPLES=100 $(PYTHON) -m benchmarks --core-only \
		--output bench_fresh.json --check BENCH_pr1.json

# Scale-out batch benchmark; writes BENCH_pr3.json (sequential vs sharded
# batches over a >=50k edge repro.workloads KB).
bench-parallel:
	$(PYTHON) -m benchmarks --parallel-only --output BENCH_pr3.json

# CI gate: fresh run asserting the 2x critical-path floor on the 8-item
# batch (see docs/scaling.md for the floor's exact definition).
bench-parallel-check:
	REX_BENCH_PARALLEL_FLOOR=2.0 $(PYTHON) -m benchmarks --parallel-only \
		--output bench_parallel_fresh.json

# Compiled-core benchmark; writes BENCH_pr4.json (dict vs compiled backend on
# the fig7 buckets + fig11 global sweep, and snapshot format 1 vs format 2,
# all on the ~52k-edge clustered workload KB — see docs/performance.md).
bench-compiled:
	$(PYTHON) -m benchmarks --compiled-only --output BENCH_pr4.json

# CI gate: fresh run asserting the 2x compiled floors (fig7 high bucket and
# fig11 global sweep, dict vs compiled measured in-process) and the 5x
# snapshot build+restore floor (format 1 replay vs format 2 buffers).
bench-compiled-check:
	REX_BENCH_COMPILED_FLOOR=2.0 REX_BENCH_SNAPSHOT_FLOOR=5.0 \
		$(PYTHON) -m benchmarks --compiled-only --output bench_compiled_fresh.json

# Durable-tier cold-boot benchmark; writes BENCH_pr6.json (checkpoint mmap
# load vs TSV reload + full compile vs SQLite replay, on the ~52k-edge
# clustered workload KB — see docs/durability.md).
bench-durability:
	$(PYTHON) -m benchmarks --durability-only --output BENCH_pr6.json

# CI gate: fresh run asserting the 5x cold-boot floor (checkpoint load vs
# TSV reload + compile).
bench-durability-check:
	REX_BENCH_DURABILITY_FLOOR=5.0 $(PYTHON) -m benchmarks --durability-only \
		--output bench_durability_fresh.json

# Observability overhead benchmark; writes BENCH_pr7.json (engine workloads
# with tracing disabled vs armed at the default 1-in-100 sample rate, plus a
# sample trace dump — see docs/observability.md).
bench-obs:
	$(PYTHON) -m benchmarks --obs-only --output BENCH_pr7.json

# CI gate: fresh run asserting tracing stays within a 5% overhead budget on
# every scenario (enumeration, distributional ranking, warm cache hits).
bench-obs-check:
	REX_BENCH_OBS_MAX_OVERHEAD=0.05 $(PYTHON) -m benchmarks --obs-only \
		--output bench_obs_fresh.json

# Delta-overlay benchmark; writes BENCH_pr8.json (warm read set interleaved
# with 1%-edge write batches on the clustered workload KB — see
# docs/serving.md for the overlay/scoped-invalidation story).
bench-delta:
	$(PYTHON) -m benchmarks --delta-only --output BENCH_pr8.json

# CI gate: fresh run asserting overlay-sized writes never trigger a full
# recompile (kb_compiles stays at 1) and scoped invalidation retains at
# least 50% of the cache under 1%-edge writes.
bench-delta-check:
	REX_BENCH_DELTA_MIN_RETENTION=0.5 $(PYTHON) -m benchmarks --delta-only \
		--output bench_delta_fresh.json

# Request-lifecycle resilience benchmark; writes BENCH_pr9.json (deadline
# checkpoint overhead on the fig7/fig11 shapes + availability under injected
# worker-pool kills at Zipf load — see docs/robustness.md).
bench-resilience:
	$(PYTHON) -m benchmarks --resilience-only --output BENCH_pr9.json

# CI gate: fresh run asserting <=3% deadline-checkpoint overhead with
# byte-identical answers, >=99% availability under chaos and zero batches
# past deadline+grace.
bench-resilience-check:
	REX_BENCH_RESILIENCE_MAX_OVERHEAD=0.03 \
	REX_BENCH_RESILIENCE_MIN_AVAILABILITY=0.99 \
		$(PYTHON) -m benchmarks --resilience-only \
		--output bench_resilience_fresh.json

# Replica-fleet benchmark; writes BENCH_pr10.json (availability + p99 with
# one replica SIGSTOPped mid-run, byte-identity against a sequential engine,
# and a rolling restart under live load — see docs/robustness.md).
bench-fleet:
	$(PYTHON) -m benchmarks --fleet-only --output BENCH_pr10.json

# CI gate: fresh run asserting >=99% availability with a gray-failed
# replica, stalled-phase p99 <= max(3x healthy p99, 1s floor), answers
# byte-identical to sequential, and a zero-failure rolling restart.
bench-fleet-check:
	REX_BENCH_FLEET_MIN_AVAILABILITY=0.99 \
	REX_BENCH_FLEET_MAX_P99X=3.0 \
		$(PYTHON) -m benchmarks --fleet-only \
		--output bench_fleet_fresh.json

# Chaos soak (~30s): Zipf traffic with periodic whole-pool SIGKILLs and KB
# writes, asserting bounded latency drift and RSS growth (tests/soak.py).
# Duration/rate/summary are env-tunable: REX_SOAK_S, REX_SOAK_RPS,
# REX_SOAK_SUMMARY (CI archives the summary JSON as an artifact).
soak-smoke:
	$(PYTHON) tests/soak.py --duration $${REX_SOAK_S:-30}
