"""REX: Explaining Relationships between Entity Pairs — a full reproduction.

This package reimplements the REX system of Fang, Das Sarma, Yu and Bohannon
(PVLDB 5(3), 2011) in pure Python: given a knowledge base and a pair of
related entities, it enumerates all *minimal relationship explanations*
(constrained graph patterns plus their instances) and ranks them by a family
of interestingness measures.

Quick start::

    from repro import Rex, paper_example_kb

    rex = Rex(paper_example_kb())
    for ranked in rex.explain("brad_pitt", "angelina_jolie", k=3):
        print(ranked.value)
        print(ranked.explanation.describe())

The main layers are:

* :mod:`repro.kb` — the knowledge-base substrate (labelled graph, schema,
  relational view used by the SQL-style distributional computation);
* :mod:`repro.core` — patterns, instances, explanations and their structural
  properties (minimality, covering path sets);
* :mod:`repro.enumeration` — NaiveEnum, path enumeration and path union;
* :mod:`repro.measures` — structural, aggregate, distributional and combined
  interestingness measures;
* :mod:`repro.ranking` — the general ranking framework plus pruned top-k
  algorithms;
* :mod:`repro.evaluation` — pair sampling, simulated user study and the
  path/non-path statistics used to reproduce the paper's evaluation.
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.datasets.entertainment import (
    EntertainmentConfig,
    generate_entertainment_kb,
    small_entertainment_kb,
)
from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.enumeration.framework import (
    DEFAULT_SIZE_LIMIT,
    EnumerationResult,
    enumerate_explanations,
)
from repro.errors import RexError
from repro.kb.graph import KnowledgeBase
from repro.kb.schema import Schema
from repro.measures import default_measures
from repro.measures.base import Measure
from repro.ranking.general import RankedExplanation, RankingResult, rank_explanations
from repro.ranking.topk import rank_topk_anti_monotonic

__version__ = "1.0.0"

__all__ = [
    "Rex",
    "KnowledgeBase",
    "Schema",
    "Explanation",
    "ExplanationInstance",
    "ExplanationPattern",
    "PatternEdge",
    "START",
    "END",
    "EnumerationResult",
    "enumerate_explanations",
    "DEFAULT_SIZE_LIMIT",
    "RankedExplanation",
    "RankingResult",
    "rank_explanations",
    "rank_topk_anti_monotonic",
    "Measure",
    "default_measures",
    "RexError",
    "paper_example_kb",
    "PAPER_PAIRS",
    "EntertainmentConfig",
    "generate_entertainment_kb",
    "small_entertainment_kb",
    "__version__",
]


class Rex:
    """High-level facade over enumeration and ranking.

    Wraps a knowledge base and exposes the two operations a search engine
    would call: enumerate all minimal explanations for a pair, or directly ask
    for the top-k most interesting explanations under a chosen measure.

    Example:
        >>> rex = Rex(paper_example_kb())
        >>> top = rex.explain("tom_cruise", "nicole_kidman", k=1)
        >>> top[0].explanation.pattern.num_edges >= 1
        True
    """

    def __init__(self, kb: KnowledgeBase, size_limit: int = DEFAULT_SIZE_LIMIT) -> None:
        self.kb = kb
        self.size_limit = size_limit
        self._measures = default_measures()

    def measures(self) -> dict[str, Measure]:
        """The available measures keyed by their Table 1 names."""
        return dict(self._measures)

    def enumerate(self, v_start: str, v_end: str, size_limit: int | None = None) -> EnumerationResult:
        """All minimal explanations for the pair (Section 3)."""
        return enumerate_explanations(
            self.kb, v_start, v_end, size_limit=size_limit or self.size_limit
        )

    def explain(
        self,
        v_start: str,
        v_end: str,
        measure: str | Measure = "size+monocount",
        k: int = 10,
        size_limit: int | None = None,
    ) -> list[RankedExplanation]:
        """The top-k most interesting explanations for the pair (Section 4).

        Args:
            v_start: the entity the user searched for.
            v_end: the related entity to explain.
            measure: a measure name from :func:`repro.measures.default_measures`
                or a :class:`Measure` instance.
            k: how many explanations to return.
            size_limit: optional override of the pattern size limit.
        """
        if isinstance(measure, str):
            try:
                measure = self._measures[measure]
            except KeyError:
                raise RexError(
                    f"unknown measure {measure!r}; available: {sorted(self._measures)}"
                ) from None
        result = rank_explanations(
            self.kb,
            v_start,
            v_end,
            measure,
            k=k,
            size_limit=size_limit or self.size_limit,
        )
        return list(result.ranked)
