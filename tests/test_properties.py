"""Tests for essentiality, decomposability and minimality (Section 2.3)."""

from __future__ import annotations

import pytest

from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.core.properties import (
    decompose,
    essential_nodes_and_edges,
    is_decomposable,
    is_essential,
    is_minimal,
)


def spouse() -> ExplanationPattern:
    return ExplanationPattern.direct_edge("spouse", directed=False)


def costar() -> ExplanationPattern:
    return ExplanationPattern.from_edges(
        [PatternEdge("?v0", START, "starring"), PatternEdge("?v0", END, "starring")]
    )


def figure_5a() -> ExplanationPattern:
    """Co-starring plus a dangling director node: not essential."""
    return ExplanationPattern.from_edges(
        [
            PatternEdge("?v0", START, "starring"),
            PatternEdge("?v0", END, "starring"),
            PatternEdge("?v0", "?v1", "director"),
        ]
    )


def figure_5b() -> ExplanationPattern:
    """Spouse edge plus co-starring: essential but decomposable."""
    return ExplanationPattern.from_edges(
        [
            PatternEdge(START, END, "spouse", directed=False),
            PatternEdge("?v0", START, "starring"),
            PatternEdge("?v0", END, "starring"),
        ]
    )


def figure_4d() -> ExplanationPattern:
    """The 'collaborated with the same director' pattern: minimal, non-path."""
    return ExplanationPattern.from_edges(
        [
            PatternEdge("?v0", START, "starring"),
            PatternEdge("?v0", END, "starring"),
            PatternEdge("?v0", "?v1", "director"),
            PatternEdge("?v2", "?v1", "director"),
            PatternEdge("?v2", END, "starring"),
        ]
    )


class TestEssentiality:
    def test_direct_edge_is_essential(self):
        assert is_essential(spouse())

    def test_costar_is_essential(self):
        assert is_essential(costar())

    def test_figure_5a_is_not_essential(self):
        assert not is_essential(figure_5a())

    def test_essential_nodes_and_edges_identify_the_dangling_part(self):
        nodes, edges = essential_nodes_and_edges(figure_5a())
        assert "?v1" not in nodes
        assert all(not edge.touches("?v1") for edge in edges)

    def test_empty_pattern_not_essential(self):
        assert not is_essential(ExplanationPattern.from_edges([]))

    def test_pattern_without_end_connection_not_essential(self):
        pattern = ExplanationPattern.from_edges([PatternEdge(START, "?v0", "starring")])
        assert not is_essential(pattern)

    def test_figure_4d_is_essential(self):
        assert is_essential(figure_4d())


class TestDecomposability:
    def test_single_edge_not_decomposable(self):
        assert not is_decomposable(spouse())

    def test_costar_not_decomposable(self):
        assert not is_decomposable(costar())

    def test_figure_5b_is_decomposable(self):
        assert is_decomposable(figure_5b())

    def test_two_direct_edges_are_decomposable(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge(START, END, "spouse", directed=False),
                PatternEdge(START, END, "partner", directed=False),
            ]
        )
        assert is_decomposable(pattern)

    def test_two_parallel_two_hop_paths_are_decomposable(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge("?v0", START, "starring"),
                PatternEdge("?v0", END, "starring"),
                PatternEdge("?v1", START, "starring"),
                PatternEdge("?v1", END, "starring"),
            ]
        )
        assert is_decomposable(pattern)

    def test_figure_4d_is_not_decomposable(self):
        assert not is_decomposable(figure_4d())


class TestDecompose:
    def test_decompose_figure_5b_into_two_components(self):
        components = decompose(figure_5b())
        assert len(components) == 2
        sizes = sorted(component.num_edges for component in components)
        assert sizes == [1, 2]

    def test_decompose_non_decomposable_returns_single_component(self):
        components = decompose(costar())
        assert len(components) == 1
        assert components[0].edges == costar().edges

    def test_decompose_empty_pattern(self):
        assert decompose(ExplanationPattern.from_edges([])) == []

    def test_components_cover_all_edges(self):
        pattern = figure_5b()
        components = decompose(pattern)
        covered = set()
        for component in components:
            covered |= set(component.edges)
        assert covered == set(pattern.edges)


class TestMinimality:
    def test_paper_examples(self):
        assert is_minimal(spouse())
        assert is_minimal(costar())
        assert is_minimal(figure_4d())
        assert not is_minimal(figure_5a())
        assert not is_minimal(figure_5b())

    def test_figure_4c_pattern_is_minimal(self):
        # Co-starring where the start entity also produced the movie.
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge("?v0", START, "starring"),
                PatternEdge("?v0", END, "starring"),
                PatternEdge("?v0", START, "producer"),
            ]
        )
        assert is_minimal(pattern)

    def test_every_path_pattern_is_minimal(self):
        pattern = ExplanationPattern.from_edges(
            [
                PatternEdge(START, "?v0", "a"),
                PatternEdge("?v0", "?v1", "b"),
                PatternEdge("?v1", END, "c"),
            ]
        )
        assert pattern.is_path()
        assert is_minimal(pattern)
