"""Aggregate interestingness measures: count and monocount (Section 4.2).

Aggregate measures capture "the more instances, the more interesting":

* :class:`CountMeasure` — the number of distinct instances of the pattern.
  Count is neither monotonic nor anti-monotonic, so the top-k pruning of
  Theorem 4 does not apply to it.
* :class:`MonocountMeasure` — for each non-target variable, count the number
  of distinct entities it can be bound to across all instances (``uniq(v)``);
  the monocount is the minimum over the variables, defined as 1 for a direct
  edge between the targets.  Monocount is anti-monotonic, which makes it the
  paper's measure of choice for pruned top-k ranking.

Both measures are defined on the explanation's *instances*; when an
explanation object already carries its instances (the normal case after
enumeration) no knowledge-base work is needed.  The measures can also be
evaluated for a *different* target pair than the one the explanation was
enumerated for — that is what the distributional measures of Section 4.3 need
— in which case the pattern is re-matched against the knowledge base.
"""

from __future__ import annotations

from repro.core.explanation import Explanation
from repro.core.matcher import match_pattern
from repro.core.pattern import END, START
from repro.kb.graph import KnowledgeBase
from repro.measures.base import Measure, Monotonicity
from repro.obs.trace import span

__all__ = ["CountMeasure", "MonocountMeasure", "aggregate_for_pair"]


def _instances_for_pair(
    kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
) -> Explanation:
    """The explanation's instances for ``(v_start, v_end)``.

    Reuses the stored instances when they already belong to the requested
    pair; otherwise evaluates the pattern against the knowledge base.
    """
    if explanation.target_pair == (v_start, v_end):
        return explanation
    with span("matcher"):
        instances = match_pattern(kb, explanation.pattern, v_start, v_end)
    return Explanation(explanation.pattern, instances)


class CountMeasure(Measure):
    """Number of distinct explanation instances (``M_count``)."""

    name = "count"
    monotonicity = Monotonicity.NONE
    higher_raw_is_better = True
    # instances are connected subgraphs through the start pair, so the value
    # only sees the size_limit neighborhood
    local_scope = True

    def raw_value(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> float:
        return float(_instances_for_pair(kb, explanation, v_start, v_end).count())


class MonocountMeasure(Measure):
    """Minimum number of distinct assignments per variable (``M_monocount``)."""

    name = "monocount"
    monotonicity = Monotonicity.ANTI_MONOTONIC
    higher_raw_is_better = True
    # same instance set as count: confined to the pair's neighborhood
    local_scope = True

    def raw_value(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> float:
        return float(_instances_for_pair(kb, explanation, v_start, v_end).monocount())


def aggregate_for_pair(
    kb: KnowledgeBase,
    explanation: Explanation,
    v_start: str,
    v_end: str,
    aggregate: Measure,
) -> float:
    """Evaluate an aggregate measure of ``explanation``'s pattern for any pair.

    Helper used by the distributional measures, which compare the aggregate of
    the given pair against the aggregates obtained by varying the target
    nodes.
    """
    return aggregate.raw_value(kb, explanation, v_start, v_end)
