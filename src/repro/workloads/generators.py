"""Seeded synthetic knowledge-base generators for benchmarks and stress tests.

The paper's running example has a few dozen edges and the bundled synthetic
entertainment KB a few thousand; web-scale serving needs workloads orders of
magnitude beyond both.  This module generates labelled knowledge bases with
controlled shape from three families that cover the structures the REX
algorithms are sensitive to:

* :func:`scale_free_kb` — preferential attachment: a heavy-tailed degree
  distribution with hub entities, the shape of real entity graphs (and the
  worst case for enumeration around hubs);
* :func:`bipartite_kb` — entity–attribute stars: every explanation must
  route through shared attribute nodes, the shape of D4M-style
  entity/attribute adjacency;
* :func:`clustered_kb` — dense communities with sparse bridges: near-uniform
  degrees inside a community, long explanations across them.

All generators take only stdlib ``random`` seeded explicitly, so a
``(generator, knobs, seed)`` triple is a reproducible workload identity that
tests and benchmark records can reference.  Directed and undirected relation
labels are declared in the schema up front.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.kb.graph import KnowledgeBase
from repro.kb.schema import Schema

__all__ = [
    "scale_free_kb",
    "bipartite_kb",
    "clustered_kb",
    "GENERATORS",
    "generate_kb",
]


def _labelled_schema(
    num_labels: int, undirected_labels: int, prefix: str = "rel"
) -> tuple[Schema, list[str]]:
    """A schema with ``num_labels`` relation labels, the last few undirected."""
    if num_labels < 1:
        raise ValueError(f"num_labels must be >= 1, got {num_labels}")
    if not 0 <= undirected_labels <= num_labels:
        raise ValueError(
            f"undirected_labels must be between 0 and num_labels, "
            f"got {undirected_labels}"
        )
    schema = Schema()
    labels = [f"{prefix}{index}" for index in range(num_labels)]
    for index, label in enumerate(labels):
        schema.declare_relation(label, directed=index < num_labels - undirected_labels)
    return schema, labels


def scale_free_kb(
    num_entities: int = 1000,
    attach_per_entity: int = 3,
    num_labels: int = 8,
    undirected_labels: int = 2,
    seed: int = 0,
    entity_type: str = "node",
) -> KnowledgeBase:
    """A preferential-attachment (Barabási–Albert style) knowledge base.

    Entities arrive one at a time and attach ``attach_per_entity`` labelled
    edges to existing entities sampled proportionally to their current
    degree, producing the hubs-and-tail degree distribution of real entity
    graphs.  Edge count is ~``(num_entities - attach_per_entity - 1) *
    attach_per_entity``.

    Args:
        num_entities: total entity count.
        attach_per_entity: edges each arriving entity attaches.
        num_labels: distinct relation labels (``rel0`` ... ``relN``).
        undirected_labels: how many of the labels are undirected.
        seed: RNG seed; same knobs + seed give a byte-identical KB.
        entity_type: declared type of every entity.
    """
    if attach_per_entity < 1:
        raise ValueError(f"attach_per_entity must be >= 1, got {attach_per_entity}")
    if num_entities < attach_per_entity + 2:
        raise ValueError(
            f"num_entities must exceed attach_per_entity + 1, got {num_entities}"
        )
    rng = random.Random(seed)
    schema, labels = _labelled_schema(num_labels, undirected_labels)
    kb = KnowledgeBase(schema=schema)
    width = len(str(num_entities - 1))
    names = [f"e{index:0{width}d}" for index in range(num_entities)]
    seed_count = attach_per_entity + 1
    for name in names[:seed_count]:
        kb.add_entity(name, entity_type)
    # repeated-endpoints list: sampling it uniformly IS degree-proportional
    # sampling (each incident edge contributes one slot per endpoint)
    endpoint_slots: list[str] = list(names[:seed_count])
    for index in range(seed_count, num_entities):
        source = names[index]
        kb.add_entity(source, entity_type)
        targets: set[str] = set()
        while len(targets) < attach_per_entity:
            candidate = endpoint_slots[rng.randrange(len(endpoint_slots))]
            if candidate != source:
                targets.add(candidate)
        # sorted for determinism: set iteration order is salted per process
        for target in sorted(targets):
            kb.add_edge(source, target, labels[rng.randrange(len(labels))])
            endpoint_slots.append(target)
            endpoint_slots.append(source)
    return kb


def bipartite_kb(
    num_entities: int = 800,
    num_attributes: int = 60,
    attributes_per_entity: int = 4,
    num_labels: int = 6,
    seed: int = 0,
) -> KnowledgeBase:
    """A bipartite entity–attribute knowledge base (D4M-style adjacency).

    Every entity links to ``attributes_per_entity`` attribute nodes drawn
    with a popularity skew (attribute ``j`` has weight ``1 / (j + 1)``), so a
    few attributes are shared by many entities — the structure that makes
    two entities relatable through common attribute values.  All edges are
    directed entity -> attribute.
    """
    if num_attributes < attributes_per_entity:
        raise ValueError(
            f"num_attributes ({num_attributes}) must be >= attributes_per_entity "
            f"({attributes_per_entity})"
        )
    rng = random.Random(seed)
    schema, labels = _labelled_schema(num_labels, 0, prefix="has_attr")
    kb = KnowledgeBase(schema=schema)
    entity_width = len(str(num_entities - 1))
    attribute_width = len(str(num_attributes - 1))
    attributes = [f"a{index:0{attribute_width}d}" for index in range(num_attributes)]
    for attribute in attributes:
        kb.add_entity(attribute, "attribute")
    weights = [1.0 / (index + 1) for index in range(num_attributes)]
    for index in range(num_entities):
        entity = f"e{index:0{entity_width}d}"
        kb.add_entity(entity, "entity")
        chosen: set[str] = set()
        while len(chosen) < attributes_per_entity:
            chosen.add(rng.choices(attributes, weights=weights, k=1)[0])
        for attribute in sorted(chosen):
            kb.add_edge(entity, attribute, labels[rng.randrange(len(labels))])
    return kb


def clustered_kb(
    num_communities: int = 12,
    community_size: int = 50,
    intra_degree: int = 4,
    inter_edges: int = 120,
    num_labels: int = 8,
    undirected_labels: int = 2,
    seed: int = 0,
) -> KnowledgeBase:
    """A community-structured knowledge base: dense clusters, sparse bridges.

    Each of the ``num_communities`` communities is a near-regular random
    graph (every member attaches ``intra_degree`` edges to random peers of
    its own community); ``inter_edges`` additional edges bridge random
    members of different communities.  Degrees are much more uniform than
    :func:`scale_free_kb`, which makes per-request explanation cost
    predictable — the property the parallel gate benchmark leans on.
    """
    if community_size < intra_degree + 2:
        raise ValueError(
            f"community_size must exceed intra_degree + 1, got {community_size}"
        )
    rng = random.Random(seed)
    schema, labels = _labelled_schema(num_labels, undirected_labels)
    kb = KnowledgeBase(schema=schema)
    communities: list[list[str]] = []
    for community in range(num_communities):
        members = [
            f"c{community:02d}_n{index:04d}" for index in range(community_size)
        ]
        for member in members:
            kb.add_entity(member, "node")
        communities.append(members)
        for position, member in enumerate(members):
            peers: set[str] = set()
            while len(peers) < intra_degree:
                candidate = members[rng.randrange(community_size)]
                if candidate != member:
                    peers.add(candidate)
            for peer in sorted(peers):
                kb.add_edge(member, peer, labels[rng.randrange(len(labels))])
    if num_communities > 1:
        for _ in range(inter_edges):
            first, second = rng.sample(range(num_communities), 2)
            source = communities[first][rng.randrange(community_size)]
            target = communities[second][rng.randrange(community_size)]
            kb.add_edge(source, target, labels[rng.randrange(len(labels))])
    return kb


#: Generator registry: workload kind -> factory; the CLI and benchmark knobs
#: reference these names.
GENERATORS: dict[str, Callable[..., KnowledgeBase]] = {
    "scale-free": scale_free_kb,
    "bipartite": bipartite_kb,
    "clustered": clustered_kb,
}


def generate_kb(kind: str, **knobs) -> KnowledgeBase:
    """Build a synthetic KB by generator name (see :data:`GENERATORS`)."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown workload generator {kind!r}; available: {sorted(GENERATORS)}"
        ) from None
    return generator(**knobs)
