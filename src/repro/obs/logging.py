"""Structured (JSON-lines) logging for the serving stack.

All serving-side loggers live under the ``rex`` hierarchy (``rex.server``
for lifecycle and errors, ``rex.access`` for the access/slow-query log).  By
default the hierarchy carries a ``NullHandler`` and stays silent — embedding
the engine or server in tests costs nothing.  ``rex-explain serve`` calls
:func:`configure_logging` to attach a real handler, either human-readable
lines or one JSON object per line (``--log-json``), each carrying the
request's trace ID when one exists.

Events are emitted through :func:`log_event`, which stashes structured
fields on the record so the JSON formatter can render them as first-class
keys instead of interpolating them into the message.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, TextIO

__all__ = [
    "ACCESS_LOGGER_NAME",
    "JsonLineFormatter",
    "ROOT_LOGGER_NAME",
    "SERVER_LOGGER_NAME",
    "configure_logging",
    "get_logger",
    "log_event",
]

ROOT_LOGGER_NAME = "rex"
SERVER_LOGGER_NAME = "rex.server"
ACCESS_LOGGER_NAME = "rex.access"

#: Accepted ``--log-level`` values, mapped to stdlib levels.
LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

# silent-by-default: importing this module must never print anything
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """One JSON object per log line: ts, level, logger, event + fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["traceback"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class _LineFormatter(logging.Formatter):
    """Human-readable lines that still append the structured fields."""

    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(fields.items())
            )
            base = f"{base} {rendered}"
        return base


def get_logger(name: str = ROOT_LOGGER_NAME) -> logging.Logger:
    """A logger in the ``rex`` hierarchy."""
    return logging.getLogger(name)


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: TextIO | None = None,
) -> logging.Logger:
    """Attach a real handler to the ``rex`` hierarchy; returns its root.

    Idempotent: a second call replaces the previously attached handler (the
    ``NullHandler`` installed at import time is left in place — it does
    nothing once a real handler exists).
    """
    try:
        resolved = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LOG_LEVELS)}"
        ) from None
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            _LineFormatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    for existing in list(logger.handlers):
        if not isinstance(existing, logging.NullHandler):
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger


def log_event(logger: logging.Logger, level: int, event: str, **fields: Any) -> None:
    """Emit ``event`` with structured ``fields`` attached to the record."""
    logger.log(level, event, extra={"fields": fields})
