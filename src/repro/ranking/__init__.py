"""Explanation ranking algorithms (Section 4.4 and Section 5.3)."""

from repro.ranking.distributional_pruning import (
    PositionComputation,
    rank_by_global_position,
    rank_by_local_position,
)
from repro.ranking.general import (
    RankedExplanation,
    RankingResult,
    rank_explanations,
    score_explanations,
)
from repro.ranking.topk import rank_topk_anti_monotonic

__all__ = [
    "PositionComputation",
    "rank_by_global_position",
    "rank_by_local_position",
    "RankedExplanation",
    "RankingResult",
    "rank_explanations",
    "score_explanations",
    "rank_topk_anti_monotonic",
]
