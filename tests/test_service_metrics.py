"""Tests for the service counters and latency histograms."""

from __future__ import annotations

import threading

import pytest

from repro.service.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()

        def worker() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_starts_at_zero_and_sets(self):
        gauge = Gauge()
        assert gauge.value == 0
        gauge.set(42)
        assert gauge.value == 42
        gauge.set(3.5)
        assert gauge.value == 3.5
        gauge.set(7)  # set-to-current, not accumulated
        assert gauge.value == 7

    def test_non_numeric_values_rejected(self):
        with pytest.raises(ValueError):
            Gauge().set("big")
        with pytest.raises(ValueError):
            Gauge().set(True)

    def test_concurrent_sets_keep_a_written_value(self):
        gauge = Gauge()

        def worker(value: int) -> None:
            for _ in range(500):
                gauge.set(value)

        threads = [threading.Thread(target=worker, args=(value,)) for value in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value in (1, 2, 3)


class TestLatencyHistogram:
    def test_count_sum_and_mean(self):
        histogram = LatencyHistogram()
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(0.006)
        assert histogram.mean() == pytest.approx(0.002)

    def test_quantiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for index in range(100):
            histogram.observe(0.0001 * (index + 1))  # 0.1ms .. 10ms
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        assert 0 < p50 <= p95 <= 0.01 + 1e-9
        # p50 of a uniform 0.1..10ms spread is around 5ms (bucket resolution)
        assert 0.002 <= p50 <= 0.01

    def test_empty_histogram_quantile_is_zero(self):
        assert LatencyHistogram().quantile(0.95) == 0.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(-0.1)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile("p95")
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(True)

    def test_quantile_edges_are_defined(self):
        empty = LatencyHistogram()
        assert empty.quantile(0.0) == 0.0
        assert empty.quantile(1.0) == 0.0
        histogram = LatencyHistogram()
        histogram.observe(0.004)
        # q=0 has no smaller observation; q=1 is the maximum observed
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == pytest.approx(0.004)

    def test_single_observation_quantiles_bounded_by_max(self):
        histogram = LatencyHistogram()
        histogram.observe(0.0042)
        for q in (0.1, 0.5, 0.95, 0.99, 1.0):
            assert 0.0 < histogram.quantile(q) <= 0.0042 + 1e-12

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.5, 0.1))

    def test_snapshot_shape(self):
        histogram = LatencyHistogram()
        histogram.observe(0.004)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["sum_s"] == pytest.approx(0.004)
        assert {"p50_s", "p95_s", "p99_s", "mean_s", "max_s"} <= set(snapshot)

    def test_overflow_bucket_caps_at_observed_max(self):
        histogram = LatencyHistogram()
        histogram.observe(30.0)  # beyond the last bound
        assert histogram.quantile(1.0) == pytest.approx(30.0)


class TestMetricsRegistry:
    def test_instruments_are_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        assert registry.counter("requests").value == 3
        registry.histogram("latency").observe(0.001)
        assert registry.histogram("latency").count == 1

    def test_snapshot_renders_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(12)
        registry.histogram("b").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["gauges"] == {"g": 12}
        assert snapshot["histograms"]["b"]["count"] == 1

    def test_gauges_are_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.gauge("kb.entities").set(5)
        assert registry.gauge("kb.entities").value == 5


class TestEngineKbGauges:
    """The serving engine publishes KB/compiled-core gauges via /metrics."""

    def test_gauges_populated_after_first_explain(self):
        from repro.datasets.paper_example import paper_example_kb
        from repro.service import ExplanationEngine

        engine = ExplanationEngine(paper_example_kb(), size_limit=4)
        try:
            gauges = engine.metrics.snapshot()["gauges"]
            # created eagerly, zero before any compile
            assert gauges["kb.entities"] == 0
            assert gauges["kb.compiled_plane_bytes"] == 0
            engine.explain("tom_cruise", "nicole_kidman", k=1)
            gauges = engine.metrics.snapshot()["gauges"]
            assert gauges["kb.entities"] == engine.kb.num_entities
            assert gauges["kb.edges"] == engine.kb.num_edges
            assert gauges["kb.labels"] == len(engine.kb.relation_labels())
            assert gauges["kb.compiled_plane_bytes"] > 0
            assert gauges["kb.compile_seconds"] > 0
            assert gauges["kb.compiled_versions_cached"] == 1
            counters = engine.metrics.snapshot()["counters"]
            assert counters["engine.kb_compiles"] == 1
        finally:
            engine.close()

    def test_kb_update_extends_compile_instead_of_dropping_it(self):
        """A write no longer nukes the compiled view: the previous version's
        compile is extended with an overlay delta, so the next read pays no
        recompile and the gauges reflect the grown KB."""
        from repro.datasets.paper_example import paper_example_kb
        from repro.service import ExplanationEngine

        engine = ExplanationEngine(paper_example_kb(), size_limit=4)
        try:
            engine.explain("tom_cruise", "nicole_kidman", k=1)
            engine.add_edges(
                [{"source": "tom_cruise", "target": "top_gun_x", "label": "starring"}]
            )
            snapshot = engine.metrics.snapshot()
            assert snapshot["gauges"]["kb.compiled_versions_cached"] == 1
            assert snapshot["gauges"]["kb.overlay_edges"] == 1
            assert snapshot["gauges"]["kb.entities"] == engine.kb.num_entities
            assert snapshot["gauges"]["kb.edges"] == engine.kb.num_edges
            assert snapshot["counters"]["engine.delta_merges"] == 1
            engine.explain("tom_cruise", "nicole_kidman", k=1)
            snapshot = engine.metrics.snapshot()
            assert snapshot["gauges"]["kb.compiled_versions_cached"] == 1
            assert snapshot["counters"]["engine.kb_compiles"] == 1
        finally:
            engine.close()

    def test_kb_update_without_prior_compile_still_serves(self):
        """A write before any read (nothing compiled yet) keeps the old
        semantics: the first read after it pays the one full compile."""
        from repro.datasets.paper_example import paper_example_kb
        from repro.service import ExplanationEngine

        engine = ExplanationEngine(paper_example_kb(), size_limit=4)
        try:
            engine.add_edges(
                [{"source": "tom_cruise", "target": "top_gun_x", "label": "starring"}]
            )
            gauges = engine.metrics.snapshot()["gauges"]
            assert gauges["kb.compiled_versions_cached"] == 0
            engine.explain("tom_cruise", "nicole_kidman", k=1)
            snapshot = engine.metrics.snapshot()
            assert snapshot["gauges"]["kb.compiled_versions_cached"] == 1
            assert snapshot["counters"]["engine.kb_compiles"] == 1
        finally:
            engine.close()
