"""Structural properties of explanation patterns (Section 2.3).

The paper restricts attention to *minimal* explanation patterns, defined as
patterns that are

* **essential** (Definition 3): every node and every edge lies on at least one
  simple path from the start variable to the end variable, treating edges as
  undirected; and
* **non-decomposable** (Definition 4): the edge set cannot be partitioned into
  two non-empty parts that share no non-target variable.

The checks below operate purely on the pattern graph; they are used by the
naive enumerator (which must filter non-minimal candidates) and by the test
suite as an oracle for the path-union algorithms, which produce only minimal
patterns by construction.
"""

from __future__ import annotations

from repro.core.pattern import END, START, ExplanationPattern, PatternEdge

__all__ = [
    "is_essential",
    "essential_nodes_and_edges",
    "is_decomposable",
    "decompose",
    "is_minimal",
]


def essential_nodes_and_edges(
    pattern: ExplanationPattern,
) -> tuple[set[str], set[PatternEdge]]:
    """Nodes and edges of ``pattern`` that lie on some simple start-end path.

    Returns:
        A pair ``(nodes, edges)`` of the essential nodes and essential edges.
        The start and end variables are included whenever at least one simple
        path exists.
    """
    nodes: set[str] = set()
    edges: set[PatternEdge] = set()
    for path in pattern.simple_paths():
        current = START
        nodes.add(START)
        for edge in path:
            edges.add(edge)
            current = edge.other(current)
            nodes.add(current)
    return nodes, edges


def is_essential(pattern: ExplanationPattern) -> bool:
    """Whether every node and edge of ``pattern`` is essential (Definition 3)."""
    if not pattern.edges:
        return False
    nodes, edges = essential_nodes_and_edges(pattern)
    return nodes == set(pattern.variables) and edges == set(pattern.edges)


def is_decomposable(pattern: ExplanationPattern) -> bool:
    """Whether ``pattern`` is decomposable (Definition 4).

    A pattern is decomposable when its edges can be split into two non-empty
    groups such that no non-target variable appears in both groups.  This is
    equivalent to asking whether the "edge graph" — edges as vertices,
    adjacency meaning sharing a non-target variable — is disconnected.
    """
    edges = sorted(pattern.edges, key=lambda edge: edge.key())
    if len(edges) <= 1:
        return False
    non_target = pattern.non_target_variables

    # Union the edges that share a non-target variable and count components.
    parent = list(range(len(edges)))

    def find(index: int) -> int:
        while parent[index] != index:
            parent[index] = parent[parent[index]]
            index = parent[index]
        return index

    def union(left: int, right: int) -> None:
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[root_right] = root_left

    by_variable: dict[str, list[int]] = {}
    for index, edge in enumerate(edges):
        for variable in edge.endpoints():
            if variable in non_target:
                by_variable.setdefault(variable, []).append(index)
    for incident in by_variable.values():
        for other in incident[1:]:
            union(incident[0], other)

    roots = {find(index) for index in range(len(edges))}
    return len(roots) > 1


def decompose(pattern: ExplanationPattern) -> list[ExplanationPattern]:
    """Split a decomposable pattern into its non-decomposable components.

    Each component keeps the start and end variables.  For a non-decomposable
    pattern the result is a single-element list containing an equal pattern.
    """
    edges = sorted(pattern.edges, key=lambda edge: edge.key())
    if not edges:
        return []
    non_target = pattern.non_target_variables

    groups: list[list[PatternEdge]] = []
    assigned: dict[PatternEdge, int] = {}
    for edge in edges:
        # Find every existing group sharing a non-target variable with edge.
        matching = [
            index
            for index, group in enumerate(groups)
            if any(
                variable in non_target and any(other.touches(variable) for other in group)
                for variable in edge.endpoints()
            )
        ]
        if not matching:
            groups.append([edge])
        else:
            target_group = groups[matching[0]]
            target_group.append(edge)
            # Merge any further matching groups into the first.
            for index in sorted(matching[1:], reverse=True):
                target_group.extend(groups.pop(index))
        assigned[edge] = 0  # bookkeeping only; membership tracked via groups
    return [ExplanationPattern.from_edges(group) for group in groups]


def is_minimal(pattern: ExplanationPattern) -> bool:
    """Whether ``pattern`` is minimal: essential and non-decomposable."""
    return is_essential(pattern) and not is_decomposable(pattern)
