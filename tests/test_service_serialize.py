"""Tests for the JSON wire shapes of explanations and outcomes."""

from __future__ import annotations

import json

import pytest

from repro.core.explanation import Explanation
from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.service import (
    ExplanationEngine,
    explanation_to_dict,
    instance_to_dict,
    outcome_to_dict,
    pattern_to_dict,
    ranked_to_dict,
)


@pytest.fixture()
def costar_explanation() -> Explanation:
    pattern = ExplanationPattern.from_edges(
        [
            PatternEdge("?v0", START, "starring"),
            PatternEdge("?v0", END, "starring"),
        ]
    )
    instances = [
        ExplanationInstance(
            {START: "brad_pitt", END: "angelina_jolie", "?v0": "mr_and_mrs_smith"}
        ),
        ExplanationInstance(
            {START: "brad_pitt", END: "angelina_jolie", "?v0": "by_the_sea"}
        ),
    ]
    return Explanation(pattern, instances)


class TestPattern:
    def test_shape(self, costar_explanation):
        payload = pattern_to_dict(costar_explanation.pattern)
        assert payload["num_nodes"] == 3
        assert payload["num_edges"] == 2
        assert payload["is_path"] is True
        assert payload["variables"] == ["?end", "?start", "?v0"]
        assert all(
            {"source", "target", "label", "directed"} <= set(edge)
            for edge in payload["edges"]
        )
        assert "starring" in payload["text"]

    def test_deterministic_edge_order(self, costar_explanation):
        first = pattern_to_dict(costar_explanation.pattern)
        second = pattern_to_dict(costar_explanation.pattern)
        assert first == second


class TestInstanceAndExplanation:
    def test_instance_is_the_binding_map(self, costar_explanation):
        payload = instance_to_dict(costar_explanation.instances[0])
        assert payload[START] == "brad_pitt"
        assert payload[END] == "angelina_jolie"
        assert payload["?v0"] in ("mr_and_mrs_smith", "by_the_sea")

    def test_explanation_shape(self, costar_explanation):
        payload = explanation_to_dict(costar_explanation)
        assert payload["size"] == 3
        assert payload["num_instances"] == 2
        assert len(payload["instances"]) == 2
        assert payload["target_pair"] == ["brad_pitt", "angelina_jolie"]
        assert payload["aggregates"] == {"count": 2, "monocount": 2}

    def test_max_instances_truncates_inline_list_only(self, costar_explanation):
        payload = explanation_to_dict(costar_explanation, max_instances=1)
        assert len(payload["instances"]) == 1
        assert payload["num_instances"] == 2


class TestRankedAndOutcome:
    def test_ranked_entry(self, costar_explanation):
        from repro.ranking.general import RankedExplanation

        payload = ranked_to_dict(
            RankedExplanation(costar_explanation, 2.5), rank=1
        )
        assert payload["rank"] == 1
        assert payload["score"] == 2.5
        assert payload["explanation"]["size"] == 3

    def test_outcome_envelope_is_json_serialisable(self, paper_kb):
        engine = ExplanationEngine(paper_kb.copy(), size_limit=4)
        outcome = engine.explain("tom_cruise", "nicole_kidman", k=2)
        payload = outcome_to_dict(outcome)
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["start"] == "tom_cruise"
        assert round_tripped["kb_version"] == engine.kb_version
        assert round_tripped["num_results"] == len(payload["results"])
        assert round_tripped["results"][0]["rank"] == 1
