"""Cold-boot paths of the durable KB tier (PR 6, BENCH_pr6.json).

One gated scenario on the ~52k-edge clustered workload KB the PR 3/4
benchmarks standardised on: how fast can a serving process go from *empty*
to *answering at the persisted KB version*?

* **tsv+compile** (baseline) — the pre-durability boot: parse the TSV edge
  list through ``load_tsv`` (N× ``add_edge`` replay) and compile the CSR
  planes.  This is what every boot cost before this PR, and what a
  checkpoint-less boot still costs.
* **checkpoint** (gated) — ``load_checkpoint``: mmap the atomic checkpoint
  file, sha256-verify the payload, unpickle the ``tobytes`` plane buffers
  and rebuild the :class:`~repro.kb.compiled.CompiledKB` with bulk
  ``frombytes`` — O(file size), no graph replay, no compile.  Gate:
  ``checkpoint`` must beat ``tsv+compile`` by
  ``REX_BENCH_DURABILITY_FLOOR`` (``make bench-durability-check`` sets 5.0).
* **sqlite-replay** (recorded, ungated) — the middle rung of the recovery
  ladder: ``KnowledgeBaseStore.load``.  It pays the same ``add_edge``
  replay as TSV plus a compile on first use; it is the fallback, not the
  fast path, so it is recorded for the ladder picture only.

Before any timing is trusted, the three boots are asserted to produce
byte-identical compiled planes at the same KB version.

Environment knobs:

* ``REX_BENCH_DURABILITY_FLOOR`` — when > 0, assert the checkpoint/TSV
  speedup meets this floor (default 0 = record only).
* ``REX_BENCH_DURABILITY_COMMUNITIES`` — KB scale (default 250 communities
  of 40 ≈ 52k edges; CI smoke can shrink it).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.kb import CompiledKB, KnowledgeBaseStore, load_checkpoint, save_checkpoint
from repro.kb.io import load_tsv, save_tsv
from repro.workloads import clustered_kb

GROUP = "durability"
ROUNDS = 3

DURABILITY_FLOOR = float(os.environ.get("REX_BENCH_DURABILITY_FLOOR", "0"))
COMMUNITIES = int(os.environ.get("REX_BENCH_DURABILITY_COMMUNITIES", "250"))
WORKLOAD_SEED = int(os.environ.get("REX_BENCH_SEED", "7")) + 6


@pytest.fixture(scope="module")
def workload_kb():
    """The standard ~52k-edge clustered workload KB."""
    return clustered_kb(
        num_communities=COMMUNITIES,
        community_size=40,
        intra_degree=5,
        inter_edges=10 * COMMUNITIES,
        seed=WORKLOAD_SEED,
    )


@pytest.fixture(scope="module")
def persisted(workload_kb, tmp_path_factory):
    """The three on-disk representations a boot can start from."""
    root = tmp_path_factory.mktemp("durability")
    tsv_path = root / "kb.tsv"
    ckpt_path = root / "kb.ckpt"
    db_path = root / "kb.sqlite3"
    save_tsv(workload_kb, tsv_path)
    save_checkpoint(workload_kb, ckpt_path)
    store = KnowledgeBaseStore(db_path)
    store.bootstrap(workload_kb)
    store.close()
    return tsv_path, ckpt_path, db_path


def _best_of(callable_, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_cold_boot_checkpoint_vs_tsv(benchmark, workload_kb, persisted):
    tsv_path, ckpt_path, db_path = persisted
    schema = workload_kb.schema.copy()

    def tsv_boot() -> CompiledKB:
        # the directionality column makes the TSV self-describing, but the
        # declaration-order-sensitive schema still comes from configuration,
        # exactly as the serve CLI passes it
        return CompiledKB.compile(load_tsv(tsv_path, schema=schema))

    def checkpoint_boot() -> CompiledKB:
        return load_checkpoint(ckpt_path)

    def sqlite_boot() -> CompiledKB:
        with KnowledgeBaseStore(db_path) as store:
            return CompiledKB.compile(store.load())

    reference = CompiledKB.compile(workload_kb)
    # the durable boots must be byte-identical to the source planes; the TSV
    # baseline is only *equivalent* (an edge list cannot preserve entity
    # insertion order, so its handle table is a permutation of the source's)
    for boot in (checkpoint_boot, sqlite_boot):
        booted = boot()
        assert booted.version == workload_kb.version, boot.__name__
        assert booted.to_buffers() == reference.to_buffers(), boot.__name__
    tsv_booted = tsv_boot()
    assert tsv_booted.version == workload_kb.version
    assert tsv_booted.num_entities == workload_kb.num_entities
    assert tsv_booted.num_edges == workload_kb.num_edges

    tsv_s, _ = _best_of(tsv_boot)
    sqlite_s, _ = _best_of(sqlite_boot)
    benchmark.pedantic(checkpoint_boot, rounds=ROUNDS, iterations=1)
    checkpoint_s = benchmark.stats.stats.min
    speedup = tsv_s / checkpoint_s

    benchmark.group = f"{GROUP}-cold-boot"
    benchmark.extra_info.update(
        {
            "scenario": "cold-boot",
            "communities": COMMUNITIES,
            "entities": workload_kb.num_entities,
            "edges": workload_kb.num_edges,
            "kb_version": workload_kb.version,
            "checkpoint_bytes": os.path.getsize(ckpt_path),
            "tsv_compile_s": round(tsv_s, 6),
            "sqlite_replay_compile_s": round(sqlite_s, 6),
            "checkpoint_s": round(checkpoint_s, 6),
            "speedup": round(speedup, 3),
            "gated": True,
            "floor": DURABILITY_FLOOR,
        }
    )
    if DURABILITY_FLOOR > 0:
        assert speedup >= DURABILITY_FLOOR, (
            f"checkpoint cold boot speedup {speedup:.2f}x is below the "
            f"{DURABILITY_FLOOR}x floor (tsv+compile {tsv_s:.3f}s vs "
            f"checkpoint {checkpoint_s:.3f}s)"
        )


def test_append_batch_overhead(benchmark, workload_kb, persisted, tmp_path):
    """Recorded, ungated: the per-batch durability tax on the write path."""
    db_path = tmp_path / "append.sqlite3"
    kb = workload_kb.copy()
    store = KnowledgeBaseStore(db_path)
    store.bootstrap(kb)
    counter = iter(range(10_000_000))

    def one_batch() -> None:
        index = next(counter)
        edge = kb.add_edge(f"bench_{index}_a", f"bench_{index}_b", "rel0")
        store.append_batch(
            [(edge.source, None), (edge.target, None)],
            [edge],
            kb.version,
            schema=kb.schema,
        )

    benchmark.pedantic(one_batch, rounds=50, iterations=1)
    store.close()
    benchmark.group = f"{GROUP}-append"
    benchmark.extra_info.update(
        {
            "scenario": "append-batch",
            "batch_shape": "1 edge + 2 entities",
            "gated": False,
        }
    )
