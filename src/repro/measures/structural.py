"""Structure-based interestingness measures (Section 4.1).

Two representatives of the measures used widely in the keyword-search and
graph-mining literature:

* :class:`SizeMeasure` — the number of nodes in the pattern; smaller patterns
  are more interesting.  Size grows under pattern expansion, so (with the
  "larger value = more interesting" orientation) the measure is
  anti-monotonic and eligible for Theorem 4's top-k pruning.
* :class:`RandomWalkMeasure` — the pattern is interpreted as an electrical
  network (each edge a unit resistor, following Faloutsos et al.'s connection
  subgraph work cited by the paper); the measure is the current delivered from
  the start variable to the end variable under a unit voltage, i.e. the
  effective conductance of the pattern graph.  More parallel, shorter
  connections conduct more and are considered more interesting.
"""

from __future__ import annotations

import numpy as np

from repro.core.explanation import Explanation
from repro.core.pattern import END, START
from repro.errors import MeasureError
from repro.kb.graph import KnowledgeBase
from repro.measures.base import Measure, Monotonicity

__all__ = ["SizeMeasure", "RandomWalkMeasure", "effective_conductance"]


class SizeMeasure(Measure):
    """Pattern size (number of variables); smaller is more interesting."""

    name = "size"
    monotonicity = Monotonicity.ANTI_MONOTONIC
    higher_raw_is_better = False
    # depends only on the pattern, which enumeration confines to the pair's
    # size_limit neighborhood
    local_scope = True

    def raw_value(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> float:
        return float(explanation.pattern.num_nodes)


def effective_conductance(explanation: Explanation) -> float:
    """Effective conductance between start and end of the pattern graph.

    Every pattern edge is a unit resistor (parallel labelled edges between the
    same variable pair count separately).  The conductance is computed from
    the graph Laplacian: fixing the start potential at 1 and the end potential
    at 0, the delivered current equals the effective conductance.

    Returns 0.0 when start and end are not connected in the pattern.
    """
    pattern = explanation.pattern
    variables = sorted(pattern.variables)
    index = {variable: position for position, variable in enumerate(variables)}
    size = len(variables)
    laplacian = np.zeros((size, size), dtype=float)
    for edge in pattern.edges:
        i, j = index[edge.source], index[edge.target]
        laplacian[i, i] += 1.0
        laplacian[j, j] += 1.0
        laplacian[i, j] -= 1.0
        laplacian[j, i] -= 1.0

    start_index, end_index = index[START], index[END]
    if laplacian[start_index, start_index] == 0 or laplacian[end_index, end_index] == 0:
        return 0.0

    # Solve for node potentials with boundary conditions v(start)=1, v(end)=0.
    free = [position for position in range(size) if position not in (start_index, end_index)]
    potentials = np.zeros(size)
    potentials[start_index] = 1.0
    if free:
        sub_laplacian = laplacian[np.ix_(free, free)]
        rhs = -laplacian[np.ix_(free, [start_index])].flatten() * 1.0
        try:
            solved = np.linalg.solve(sub_laplacian, rhs)
        except np.linalg.LinAlgError:
            # Disconnected interior components make the submatrix singular;
            # fall back to the least-squares solution, which assigns an
            # arbitrary (but consistent) potential to the floating component.
            solved, *_ = np.linalg.lstsq(sub_laplacian, rhs, rcond=None)
        for position, value in zip(free, solved):
            potentials[position] = value
    # Current out of the start node = sum over edges (v_start - v_neighbor).
    current = 0.0
    for edge in explanation.pattern.edges:
        i, j = index[edge.source], index[edge.target]
        if start_index in (i, j):
            other = j if i == start_index else i
            current += potentials[start_index] - potentials[other]
    return float(current)


class RandomWalkMeasure(Measure):
    """Electrical-current / random-walk measure on the pattern graph."""

    name = "random-walk"
    monotonicity = Monotonicity.NONE
    higher_raw_is_better = True

    def raw_value(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> float:
        if explanation.pattern.num_edges == 0:
            raise MeasureError("cannot compute the random-walk measure of an empty pattern")
        return effective_conductance(explanation)
