"""Compiled array-backed KB core vs the dict substrate (PR 4, BENCH_pr4.json).

Three gated scenarios, all on the ~52k-edge clustered workload KB that the
scale-out benchmark (PR 3) introduced, with both backends measured fresh in
the same process and the outputs asserted byte-identical before any timing
is trusted:

* **fig7 enumeration buckets** — the Figure 7 experiment shape (entity pairs
  bucketed by connectedness, full ``enumerate_explanations``) at workload
  scale.  The ``high`` bucket is the gated scenario: compiled over dict must
  clear ``REX_BENCH_COMPILED_FLOOR`` (the ``make bench-compiled-check`` gate
  sets 2.0).  ``low``/``medium`` are recorded ungated for the figure shape.
* **fig11 global distributional sweep** — top-10 by sampled global position
  (no pruning: the pure batched-sweep scenario) for a medium-connectedness
  pair; same floor.  The pruned variant is recorded ungated.
* **snapshot build + restore** — shipping a worker replica: the format-1
  entity/edge tuple replay (rebuilt edge-by-edge through ``add_edge``, the
  PR 3 baseline, reproduced locally below) vs payload format 2 (``tobytes``
  buffers of the serving engine's cached compile, restored with
  ``frombytes``).  Gate: ``REX_BENCH_SNAPSHOT_FLOOR`` (the check target sets
  5.0).  The one-off compile is recorded separately (``compile_s``): in the
  serving flow it is the engine's per-version cache, already paid for by the
  request path, so snapshotting bills only the buffer copies.

Environment knobs:

* ``REX_BENCH_COMPILED_FLOOR`` — when > 0, assert the fig7-high and fig11
  global-sweep speedups meet this floor (default 0 = record only).
* ``REX_BENCH_SNAPSHOT_FLOOR`` — same for the snapshot scenario (default 0).
* ``REX_BENCH_COMPILED_COMMUNITIES`` — KB scale (default 250 communities of
  40 ≈ 52k edges; CI smoke can shrink it).
* ``REX_BENCH_COMPILED_PAIRS`` — pairs per connectedness bucket (default 4).
* ``REX_BENCH_GLOBAL_SAMPLES`` — sampled start entities of the global
  distribution (default 100, the paper's number).
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.enumeration.framework import enumerate_explanations
from repro.evaluation.pairs import sample_pairs_by_connectedness
from repro.kb.compiled import CompiledKB
from repro.kb.graph import KnowledgeBase
from repro.kb.schema import EntityType, RelationType, Schema
from repro.parallel.snapshot import kb_from_payload, kb_to_payload
from repro.ranking.distributional_pruning import rank_by_global_position
from repro.workloads import clustered_kb

GROUP = "compiled-core"
SIZE_LIMIT = 5
ROUNDS = 3

COMPILED_FLOOR = float(os.environ.get("REX_BENCH_COMPILED_FLOOR", "0"))
SNAPSHOT_FLOOR = float(os.environ.get("REX_BENCH_SNAPSHOT_FLOOR", "0"))
COMMUNITIES = int(os.environ.get("REX_BENCH_COMPILED_COMMUNITIES", "250"))
PAIRS_PER_BUCKET = int(os.environ.get("REX_BENCH_COMPILED_PAIRS", "4"))
GLOBAL_SAMPLES = int(os.environ.get("REX_BENCH_GLOBAL_SAMPLES", "100"))
WORKLOAD_SEED = int(os.environ.get("REX_BENCH_SEED", "7")) + 4


@pytest.fixture(scope="module")
def workload_kb() -> KnowledgeBase:
    """The PR 3 clustered workload KB (~52k edges at the default knobs)."""
    return clustered_kb(
        num_communities=COMMUNITIES,
        community_size=40,
        intra_degree=5,
        inter_edges=10 * COMMUNITIES,
        seed=WORKLOAD_SEED,
    )


@pytest.fixture(scope="module")
def compiled_kb(workload_kb) -> CompiledKB:
    return CompiledKB.compile(workload_kb)


@pytest.fixture(scope="module")
def bucketed_pairs(workload_kb):
    """Figure 7 style connectedness buckets sampled from the workload KB."""
    buckets = sample_pairs_by_connectedness(
        workload_kb,
        pairs_per_bucket=PAIRS_PER_BUCKET,
        length_limit=4,
        seed=WORKLOAD_SEED,
        entity_type="node",
    )
    for name, pairs in buckets.items():
        assert pairs, f"no pairs sampled for the {name} bucket"
    return buckets


def _render_explanations(explanations) -> list:
    return sorted(
        (explanation.pattern.canonical_key, tuple(i.items() for i in explanation.instances))
        for explanation in explanations
    )


def _best_of(callable_, rounds: int = ROUNDS) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - started)
    return best, result


# ---------------------------------------------------------------------------
# fig7: enumeration buckets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bucket", ["low", "medium", "high"])
def test_fig7_enumeration_compiled_vs_dict(
    benchmark, workload_kb, compiled_kb, bucketed_pairs, bucket
):
    """Full enumeration per bucket on both backends; ``high`` is gated."""
    pairs = bucketed_pairs[bucket]

    def run(kb):
        return [
            enumerate_explanations(kb, pair.v_start, pair.v_end, size_limit=SIZE_LIMIT)
            for pair in pairs
        ]

    # Byte-identity first: same explanations (patterns and instance sets).
    for expected, actual in zip(run(workload_kb), run(compiled_kb)):
        assert _render_explanations(actual.explanations) == _render_explanations(
            expected.explanations
        )

    dict_s, _ = _best_of(lambda: run(workload_kb))
    compiled_results = benchmark.pedantic(
        lambda: run(compiled_kb), rounds=ROUNDS, iterations=1
    )
    compiled_s = benchmark.stats.stats.min
    speedup = dict_s / compiled_s

    benchmark.group = f"{GROUP}-fig7-{bucket}"
    benchmark.extra_info.update(
        {
            "scenario": f"fig7-{bucket}",
            "pairs": len(pairs),
            "size_limit": SIZE_LIMIT,
            "explanations": sum(r.num_explanations for r in compiled_results),
            "dict_s": round(dict_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(speedup, 3),
            "gated": bucket == "high",
            "floor": COMPILED_FLOOR if bucket == "high" else 0,
        }
    )
    if bucket == "high" and COMPILED_FLOOR > 0:
        assert speedup >= COMPILED_FLOOR, (
            f"compiled fig7-high enumeration speedup {speedup:.2f}x is below the "
            f"{COMPILED_FLOOR}x floor (dict {dict_s:.3f}s vs compiled {compiled_s:.3f}s)"
        )


# ---------------------------------------------------------------------------
# fig11: global distributional sweep
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig11_workload(workload_kb, bucketed_pairs):
    """A medium-connectedness pair with its pre-enumerated explanations."""
    pair = bucketed_pairs["medium"][0]
    explanations = enumerate_explanations(
        workload_kb, pair.v_start, pair.v_end, size_limit=SIZE_LIMIT
    ).explanations
    return pair, explanations


@pytest.mark.parametrize("prune", [False, True], ids=["global", "global+pruning"])
def test_fig11_global_sweep_compiled_vs_dict(
    benchmark, workload_kb, compiled_kb, fig11_workload, prune
):
    """Sampled global-position ranking; the unpruned sweep is gated."""
    pair, explanations = fig11_workload

    def run(kb):
        return rank_by_global_position(
            kb,
            explanations,
            pair.v_start,
            pair.v_end,
            k=10,
            prune=prune,
            num_samples=GLOBAL_SAMPLES,
        )

    expected = run(workload_kb)
    actual = run(compiled_kb)
    assert [
        (entry.explanation.pattern.canonical_key, entry.value) for entry in actual.ranked
    ] == [
        (entry.explanation.pattern.canonical_key, entry.value)
        for entry in expected.ranked
    ]
    assert actual.stats == expected.stats

    dict_s, _ = _best_of(lambda: run(workload_kb))
    benchmark.pedantic(lambda: run(compiled_kb), rounds=ROUNDS, iterations=1)
    compiled_s = benchmark.stats.stats.min
    speedup = dict_s / compiled_s

    gated = not prune
    benchmark.group = f"{GROUP}-fig11"
    benchmark.extra_info.update(
        {
            "scenario": "fig11-global" + ("+pruning" if prune else ""),
            "global_samples": GLOBAL_SAMPLES,
            "explanations": len(explanations),
            "bindings_enumerated": actual.stats["bindings_enumerated"],
            "dict_s": round(dict_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(speedup, 3),
            "gated": gated,
            "floor": COMPILED_FLOOR if gated else 0,
        }
    )
    if gated and COMPILED_FLOOR > 0:
        assert speedup >= COMPILED_FLOOR, (
            f"compiled fig11 global-sweep speedup {speedup:.2f}x is below the "
            f"{COMPILED_FLOOR}x floor (dict {dict_s:.3f}s vs compiled {compiled_s:.3f}s)"
        )


# ---------------------------------------------------------------------------
# snapshot build + restore (format 1 replay vs format 2 buffers)
# ---------------------------------------------------------------------------


def _payload_v1(kb: KnowledgeBase) -> tuple:
    """The PR 3 format-1 snapshot: plain entity/edge tuples (baseline)."""
    relations = tuple(
        (relation.name, relation.directed, relation.domain, relation.range)
        for relation in kb.schema
    )
    entity_types = tuple(
        (entity_type.name, entity_type.description)
        for entity_type in kb.schema.entity_types.values()
    )
    entities = tuple((entity, kb.entity_type(entity)) for entity in kb.entities)
    edges = tuple(
        (edge.source, edge.target, edge.label, edge.directed) for edge in kb.edges()
    )
    return (1, kb.version, relations, entity_types, entities, edges)


def _restore_v1(payload: tuple) -> KnowledgeBase:
    """The PR 3 format-1 restore: N× ``add_edge`` replay (baseline)."""
    _, _, relations, entity_types, entities, edges = payload
    schema = Schema(
        relations=(
            RelationType(name=name, directed=directed, domain=domain, range=range_)
            for name, directed, domain, range_ in relations
        ),
        entity_types=(
            EntityType(name=name, description=description)
            for name, description in entity_types
        ),
    )
    kb = KnowledgeBase(schema=schema)
    for entity, entity_type in entities:
        kb.add_entity(entity, entity_type)
    for source, target, label, directed in edges:
        kb.add_edge(source, target, label, directed)
    return kb


def test_snapshot_build_restore_speedup(benchmark, workload_kb, compiled_kb):
    """Format-2 ship+restore vs the format-1 edge replay on the 52k-edge KB."""
    # Correctness first: both replicas answer the same read API.
    v1_replica = _restore_v1(_payload_v1(workload_kb))
    v2_replica, v2_version = kb_from_payload(kb_to_payload(compiled_kb))
    assert v2_version == workload_kb.version
    assert list(v2_replica.entities) == list(v1_replica.entities)
    assert [e.key() for e in v2_replica.edges()] == [
        e.key() for e in v1_replica.edges()
    ]
    assert v2_replica.label_counts() == v1_replica.label_counts()

    v1_build_s, v1_payload = _best_of(lambda: _payload_v1(workload_kb))
    v1_restore_s, _ = _best_of(lambda: _restore_v1(v1_payload))

    # Format-2 build ships the engine's cached compile (the request path has
    # already paid for it); the cold compile is recorded separately.
    v2_build_s, v2_payload = _best_of(lambda: kb_to_payload(compiled_kb))

    def v2_restore():
        return kb_from_payload(v2_payload)

    benchmark.pedantic(v2_restore, rounds=ROUNDS, iterations=1)
    v2_restore_s = benchmark.stats.stats.min

    compile_s, _ = _best_of(lambda: CompiledKB.compile(workload_kb), rounds=1)

    v1_total = v1_build_s + v1_restore_s
    v2_total = v2_build_s + v2_restore_s
    speedup = v1_total / v2_total
    speedup_cold = v1_total / (v2_total + compile_s)

    benchmark.group = f"{GROUP}-snapshot"
    benchmark.extra_info.update(
        {
            "scenario": "snapshot-build-restore",
            "entities": workload_kb.num_entities,
            "edges": workload_kb.num_edges,
            "format1_build_s": round(v1_build_s, 6),
            "format1_restore_s": round(v1_restore_s, 6),
            "format2_build_s": round(v2_build_s, 6),
            "format2_restore_s": round(v2_restore_s, 6),
            "compile_s": round(compile_s, 6),
            "format1_payload_bytes": len(pickle.dumps(v1_payload)),
            "format2_payload_bytes": len(pickle.dumps(v2_payload)),
            "speedup": round(speedup, 3),
            "speedup_including_cold_compile": round(speedup_cold, 3),
            "gated": True,
            "floor": SNAPSHOT_FLOOR,
        }
    )
    if SNAPSHOT_FLOOR > 0:
        assert speedup >= SNAPSHOT_FLOOR, (
            f"format-2 snapshot build+restore speedup {speedup:.2f}x is below the "
            f"{SNAPSHOT_FLOOR}x floor (format 1 {v1_total:.3f}s vs format 2 "
            f"{v2_total:.3f}s)"
        )
