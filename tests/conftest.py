"""Shared fixtures for the REX reproduction test suite."""

from __future__ import annotations

import pytest

from repro.datasets.entertainment import EntertainmentConfig, generate_entertainment_kb
from repro.datasets.paper_example import paper_example_kb
from repro.enumeration.framework import enumerate_explanations
from repro.kb.graph import KnowledgeBase


@pytest.fixture(scope="session")
def paper_kb() -> KnowledgeBase:
    """The Figure 3 style running-example knowledge base."""
    return paper_example_kb()


@pytest.fixture(scope="session")
def tiny_synthetic_kb() -> KnowledgeBase:
    """A small synthetic entertainment KB used where the paper KB is too small."""
    config = EntertainmentConfig(num_persons=60, num_movies=40, seed=3)
    return generate_entertainment_kb(config)


@pytest.fixture(scope="session")
def brad_angelina_explanations(paper_kb):
    """All minimal explanations (size <= 4) for the Brad Pitt / Angelina Jolie pair."""
    return enumerate_explanations(
        paper_kb, "brad_pitt", "angelina_jolie", size_limit=4
    ).explanations


@pytest.fixture(scope="session")
def winslet_dicaprio_explanations(paper_kb):
    """All minimal explanations (size <= 5) for the Kate Winslet / Leonardo DiCaprio pair."""
    return enumerate_explanations(
        paper_kb, "kate_winslet", "leonardo_dicaprio", size_limit=5
    ).explanations


@pytest.fixture()
def triangle_kb() -> KnowledgeBase:
    """A tiny hand-built KB with a mix of directed and undirected edges.

    Layout::

        a --knows-- b          (undirected)
        a <-likes-- c --likes--> b
        a --works_at--> org <--works_at-- b
    """
    kb = KnowledgeBase()
    kb.schema.declare_relation("knows", directed=False)
    kb.schema.declare_relation("likes", directed=True)
    kb.schema.declare_relation("works_at", directed=True)
    kb.add_edge("a", "b", "knows")
    kb.add_edge("c", "a", "likes")
    kb.add_edge("c", "b", "likes")
    kb.add_edge("a", "org", "works_at")
    kb.add_edge("b", "org", "works_at")
    return kb
