"""Fault-injection utilities for the durability and resilience test suites.

Four layers of induced failure, matching the layers that can actually fail
in production:

* :func:`flaky_connection_factory` — a ``KnowledgeBaseStore`` connection
  factory whose transactions start failing at commit time after a budget of
  successful commits, for exercising the store's rollback / degraded-mode
  paths without touching the filesystem;
* :func:`broken_checkpoint_fs` — a context manager that swaps the
  checkpoint module's ``fsync``/``replace`` seams for ones that raise
  ``EIO``, for exercising checkpoint-write failure handling;
* :func:`kill_worker_pool` — SIGKILL every live worker of an engine's
  parallel batch executor, for exercising the retry-with-backoff and
  circuit-breaker paths (``tests/test_resilience_chaos.py`` and the
  resilience benchmark's chaos gate);
* :func:`stop_one_worker` / :func:`resume_worker` / :func:`gray_failure` —
  SIGSTOP a single replica to fake a *gray* failure: the process exists
  (no BrokenProcessPool, no crash), it just never answers.  Only the
  fleet's probe/hedge machinery can detect this, which is exactly what
  the fleet tests and ``benchmarks/bench_fleet.py`` assert;
* :class:`ServerProcess` — a subprocess driver around ``rex-explain serve``
  that the crash tests SIGKILL mid-write-burst and then restart against the
  same database, asserting recovery from the outside like an operator would.

This module is imported by tests, not collected as one (no ``test_``
prefix).
"""

from __future__ import annotations

import errno
import http.client
import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

__all__ = [
    "FlakyConnection",
    "flaky_connection_factory",
    "broken_checkpoint_fs",
    "kill_worker_pool",
    "stop_one_worker",
    "resume_worker",
    "gray_failure",
    "ServerProcess",
]


# -- worker-pool chaos -------------------------------------------------------


def kill_worker_pool(engine: Any) -> list[int]:
    """SIGKILL every live worker process of ``engine``'s batch executor.

    The pool must already be spun up (dispatch one batch first); returns the
    pids that were killed.  No Python cleanup of any kind runs in the
    workers — the next dispatch observes the crash, and what happens then
    (transparent retry, structured failure, breaker trip) is exactly what
    the resilience tests assert.
    """
    executor = engine.executor
    assert executor is not None, "the pool must be spun up before the kill"
    pids = list(executor.worker_pids())
    for pid in pids:
        os.kill(pid, signal.SIGKILL)
    return pids


def stop_one_worker(engine: Any) -> int:
    """SIGSTOP one active-slot replica of ``engine``'s fleet (gray failure).

    Unlike SIGKILL, a stopped process stays alive for the OS: its pool never
    breaks, submissions never error — work sent to it simply never returns.
    Picks the first fleet slot's worker (never the hot standby, which serves
    no traffic) and returns the stopped pid; pair with :func:`resume_worker`
    or let the fleet's probe machinery declare it DEAD and SIGKILL it.
    """
    executor = engine.executor
    assert executor is not None, "the fleet must be spun up before the stop"
    # force lazy replicas to spawn so the snapshot has pids to choose from
    executor.worker_pids()
    fleet = executor.fleet_snapshot()
    assert fleet is not None, "fleet snapshot unavailable"
    for replica in fleet["replicas"]:
        pids = replica.get("pids") or []
        if pids:
            os.kill(pids[0], signal.SIGSTOP)
            return pids[0]
    raise AssertionError("no live replica pid to stop")


def resume_worker(pid: int) -> bool:
    """SIGCONT a previously stopped worker; False if it is already gone.

    Tolerates the fleet having SIGKILLed the stopped process in the
    meantime (the probe path declares it DEAD and replaces it) — chaos
    teardown must not fail because recovery already happened.
    """
    try:
        os.kill(pid, signal.SIGCONT)
        return True
    except ProcessLookupError:
        return False


@contextmanager
def gray_failure(engine: Any) -> Iterator[int]:
    """SIGSTOP one replica for the duration of the block, then SIGCONT it.

    Yields the stopped pid.  The resume on exit is best-effort: if the
    fleet already killed and replaced the replica, there is nothing left to
    resume and that is success, not failure.
    """
    pid = stop_one_worker(engine)
    try:
        yield pid
    finally:
        resume_worker(pid)


# -- failing SQLite connections ---------------------------------------------


class FlakyConnection:
    """A delegating ``sqlite3.Connection`` proxy whose commits fail on cue.

    The store runs every write as ``with self._conn:`` — entering the proxy
    opens the real transaction, and a *successful* exit is where the commit
    happens.  Once the commit budget is exhausted the proxy rolls the
    transaction back and raises ``sqlite3.OperationalError`` instead, which
    is exactly what a full disk or yanked volume produces: an atomic batch
    that never happened.
    """

    def __init__(self, conn: sqlite3.Connection, commits_allowed: int) -> None:
        self._conn = conn
        self.commits_remaining = commits_allowed
        self.injected_failures = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._conn, name)

    def __enter__(self) -> "FlakyConnection":
        self._conn.__enter__()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> Any:
        if exc_type is None and self.commits_remaining <= 0:
            self.injected_failures += 1
            self._conn.rollback()
            raise sqlite3.OperationalError("injected commit failure: disk I/O error")
        if exc_type is None:
            self.commits_remaining -= 1
        return self._conn.__exit__(exc_type, exc, tb)


def flaky_connection_factory(commits_allowed: int):
    """A ``KnowledgeBaseStore`` connection factory with a commit budget.

    ``commits_allowed`` counts *every* transaction on the connection,
    including the schema-initialisation commit the store performs on open —
    budget 1 means "open succeeds, the first data write fails".  The
    returned factory exposes the connections it made as ``factory.connections``
    so tests can assert on ``injected_failures``.
    """

    connections: list[FlakyConnection] = []

    def factory(path: str) -> FlakyConnection:
        conn = FlakyConnection(
            sqlite3.connect(path, check_same_thread=False), commits_allowed
        )
        connections.append(conn)
        return conn

    factory.connections = connections
    return factory


# -- failing checkpoint filesystem ops --------------------------------------


@contextmanager
def broken_checkpoint_fs(
    fail_fsync: bool = False, fail_replace: bool = False
) -> Iterator[None]:
    """Make the checkpoint module's durability syscalls raise ``EIO``.

    Patches the ``_fsync`` / ``_replace`` seams of ``repro.kb.checkpoint``
    (module-level indirections that exist for this purpose) and restores
    them on exit, so a test can assert that a checkpoint that could not be
    made durable is reported as a :class:`~repro.errors.CheckpointError`
    and never replaces the previous good file.
    """

    from repro.kb import checkpoint as ckpt

    def _fail(*_args: Any, **_kwargs: Any) -> None:
        raise OSError(errno.EIO, "injected I/O error")

    original_fsync, original_replace = ckpt._fsync, ckpt._replace
    if fail_fsync:
        ckpt._fsync = _fail
    if fail_replace:
        ckpt._replace = _fail
    try:
        yield
    finally:
        ckpt._fsync, ckpt._replace = original_fsync, original_replace


# -- subprocess crash driver ------------------------------------------------


class ServerProcess:
    """Drive a real ``rex-explain serve`` subprocess for crash tests.

    The server is launched on an ephemeral port with the demo KB and the
    given ``--db`` / ``--checkpoint-dir``; :meth:`kill` delivers SIGKILL
    (the crash under test — no Python cleanup of any kind runs), while
    :meth:`terminate` delivers SIGTERM and asserts the graceful-shutdown
    path exits cleanly.
    """

    def __init__(
        self,
        db: str | Path,
        checkpoint_dir: str | Path | None = None,
        workers: int = 0,
        startup_timeout: float = 60.0,
    ) -> None:
        argv = [
            sys.executable,
            "-u",
            "-m",
            "repro.cli",
            "serve",
            "--demo",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--db",
            str(db),
        ]
        if checkpoint_dir is not None:
            argv += ["--checkpoint-dir", str(checkpoint_dir)]
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        self.port = self._wait_for_port(startup_timeout)

    def _wait_for_port(self, timeout: float) -> int:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server exited before listening (rc={self.proc.poll()})"
                )
            if "listening on http://" in line:
                return int(line.rstrip().rstrip("/").rsplit(":", 1)[1])
        raise RuntimeError("server did not report its port in time")

    # -- client side -------------------------------------------------------

    def _request(
        self, method: str, route: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, route, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def post_edges(self, edges: list[dict]) -> tuple[int, dict]:
        return self._request("POST", "/kb/edges", {"edges": edges})

    def healthz(self) -> dict:
        status, payload = self._request("GET", "/healthz")
        assert status == 200, (status, payload)
        return payload

    # -- fault delivery ----------------------------------------------------

    def kill(self) -> None:
        """SIGKILL — the crash under test.  No cleanup code runs."""
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self, timeout: float = 60.0) -> int:
        """SIGTERM — graceful shutdown; returns the exit code."""
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def close(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        if self.proc.stdout is not None:
            self.proc.stdout.close()

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
