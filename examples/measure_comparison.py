#!/usr/bin/env python3
"""Compare how the paper's interestingness measures rank the same explanations.

The paper's Table 1 compares eight measures (size, random walk, count,
monocount, local and global distributional position, and two lexicographic
combinations).  This example enumerates the explanations for one entity pair
once and prints the top-3 ranking under every measure side by side, making the
qualitative differences visible: aggregate measures reward well-supported
patterns, distributional measures reward *rare* patterns, and the combinations
balance both.

Run with::

    python examples/measure_comparison.py [start_entity end_entity]
"""

from __future__ import annotations

import sys

from repro import paper_example_kb
from repro.enumeration.framework import enumerate_explanations
from repro.measures import default_measures
from repro.ranking.general import score_explanations


def short_description(explanation) -> str:
    """A one-line rendering of an explanation pattern."""
    edges = ", ".join(
        f"{edge.source.lstrip('?')}-{edge.label}-{edge.target.lstrip('?')}"
        for edge in explanation.pattern
    )
    return f"[{explanation.pattern.num_nodes} nodes | {explanation.num_instances} inst] {edges}"


def main() -> None:
    v_start, v_end = "brad_pitt", "angelina_jolie"
    if len(sys.argv) == 3:
        v_start, v_end = sys.argv[1], sys.argv[2]

    kb = paper_example_kb()
    print(f"Knowledge base: {kb}")
    print(f"Explaining the pair ({v_start}, {v_end})\n")

    result = enumerate_explanations(kb, v_start, v_end, size_limit=4)
    print(
        f"Enumerated {result.num_explanations} minimal explanations "
        f"({len(result.paths())} paths, {len(result.non_paths())} non-paths)\n"
    )

    for name, measure in default_measures().items():
        ranked = score_explanations(kb, result.explanations, measure, v_start, v_end)[:3]
        print(f"--- top-3 by {name} ---")
        for rank, entry in enumerate(ranked, start=1):
            print(f"  {rank}. value={entry.value:>12.4g}  {short_description(entry.explanation)}")
        print()


if __name__ == "__main__":
    main()
