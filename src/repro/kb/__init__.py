"""Knowledge-base substrate: labelled graph, schema, relational view,
durable store and compiled-plane checkpoints."""

from repro.kb.checkpoint import checkpoint_info, load_checkpoint, save_checkpoint
from repro.kb.compiled import CompiledKB, compile_kb
from repro.kb.graph import Edge, KnowledgeBase, NeighborEntry
from repro.kb.schema import EntityType, RelationType, Schema, default_entertainment_schema
from repro.kb.store import KnowledgeBaseStore

__all__ = [
    "CompiledKB",
    "compile_kb",
    "Edge",
    "KnowledgeBase",
    "NeighborEntry",
    "EntityType",
    "RelationType",
    "Schema",
    "default_entertainment_schema",
    "KnowledgeBaseStore",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_info",
]
