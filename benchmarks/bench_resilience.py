"""Request-lifecycle resilience discipline (PR 9, BENCH_pr9.json).

Two properties are recorded (and gated by ``make bench-resilience-check``):

* **Deadline-checkpoint overhead** — the cooperative cancellation
  checkpoints run inside the enumeration/matching/sweep hot loops on every
  request, so arming a (generous) deadline must cost ≤3% on the uninjected
  fig7/fig11 shapes, with byte-identical answers.  The armed/unarmed pair is
  timed in interleaved rounds and the gated statistic is the median of
  per-round ratios, exactly as ``bench_obs.py`` does for tracing.
* **Availability under chaos** — a Zipf-skewed request stream is served in
  deadline-armed batches while the whole worker pool is SIGKILLed at fixed
  intervals.  The retry-with-backoff loop must absorb the kills: the gate
  asserts ≥99% of admitted requests are answered and **zero** batches run
  past their deadline budget plus a 0.5s cooperative-checkpoint grace
  window.

Environment knobs:

* ``REX_BENCH_RESILIENCE_MAX_OVERHEAD`` — when > 0, gate the armed/unarmed
  slowdown at this fraction (the check target sets 0.03); default 0 records
  without gating.
* ``REX_BENCH_RESILIENCE_MIN_AVAILABILITY`` — when > 0, gate chaos-run
  availability at this fraction (the check target sets 0.99).
* ``REX_BENCH_RESILIENCE_REQUESTS`` — chaos-stream length (default 200).
* ``REX_BENCH_RESILIENCE_DEADLINE_S`` — per-batch deadline budget under
  chaos (default 5.0).
* ``REX_BENCH_RESILIENCE_GRACE_S`` — allowed overshoot past the budget, one
  work quantum of cooperative cancellation (default 0.5).
"""

from __future__ import annotations

import json
import os
import signal
import time

from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.errors import RexError
from repro.resilience import RetryPolicy, deadline_scope
from repro.service.engine import ExplanationEngine
from repro.service.serialize import outcome_to_dict
from repro.workloads import clustered_kb, sample_request_stream

from conftest import SIZE_LIMIT

GROUP = "resilience"
ROUNDS = 9
TOP_K = 5

MAX_OVERHEAD = float(os.environ.get("REX_BENCH_RESILIENCE_MAX_OVERHEAD", "0"))
MIN_AVAILABILITY = float(
    os.environ.get("REX_BENCH_RESILIENCE_MIN_AVAILABILITY", "0")
)
CHAOS_REQUESTS = int(os.environ.get("REX_BENCH_RESILIENCE_REQUESTS", "200"))
DEADLINE_S = float(os.environ.get("REX_BENCH_RESILIENCE_DEADLINE_S", "5.0"))
GRACE_S = float(os.environ.get("REX_BENCH_RESILIENCE_GRACE_S", "0.5"))
# inner repeats per overhead round, for the same reason as bench_obs: a
# single pair-sweep is milliseconds, too short for stable round timings
COLD_REPEATS = int(os.environ.get("REX_BENCH_RESILIENCE_COLD_REPEATS", "5"))
BATCH_SIZE = 8
KILL_EVERY_BATCHES = 5


def _canonical(outcomes) -> str:
    documents = []
    for outcome in outcomes:
        document = outcome_to_dict(outcome)
        document.pop("elapsed_s", None)
        documents.append(document)
    return json.dumps(documents, sort_keys=True)


def _paired_round(off_run, on_run, samples: list):
    def run():
        t0 = time.perf_counter()
        off_run()
        t1 = time.perf_counter()
        on_run()
        t2 = time.perf_counter()
        samples.append((t1 - t0, t2 - t1))

    return run


def _gate_and_record(benchmark, scenario: str, samples: list) -> None:
    samples = samples[-ROUNDS:]
    ratios = sorted(on / off for off, on in samples if off > 0)
    overhead = ratios[len(ratios) // 2] - 1.0
    off_s = min(off for off, _ in samples)
    on_s = min(on for _, on in samples)
    benchmark.group = f"{GROUP}-{scenario}"
    benchmark.extra_info.update(
        {
            "scenario": scenario,
            "deadline_off_s": round(off_s, 6),
            "deadline_on_s": round(on_s, 6),
            "overhead_fraction": round(overhead, 4),
            "max_overhead": MAX_OVERHEAD,
        }
    )
    if MAX_OVERHEAD > 0:
        assert overhead <= MAX_OVERHEAD, (
            f"{scenario}: deadline-checkpoint overhead {overhead:.2%} exceeds "
            f"the {MAX_OVERHEAD:.0%} budget "
            f"(best off={off_s:.6f}s on={on_s:.6f}s)"
        )


def _cold_workload(engine: ExplanationEngine, measure: str, deadline_s):
    def run():
        for _ in range(COLD_REPEATS):
            for start, end in PAPER_PAIRS:
                engine.cache.clear()
                engine.explain(
                    start, end, measure=measure, k=TOP_K, deadline_s=deadline_s
                )

    return run


def _overhead_scenario(benchmark, scenario: str, measure: str) -> None:
    engine = ExplanationEngine(paper_example_kb(), size_limit=SIZE_LIMIT)
    try:
        requests = [
            {"start": s, "end": e, "k": TOP_K, "measure": measure}
            for s, e in PAPER_PAIRS
        ]
        unarmed = engine.explain_batch(requests)
        engine.cache.clear()
        with deadline_scope(3600.0):
            armed = engine.explain_batch(requests)
        assert _canonical(armed) == _canonical(unarmed), (
            "an armed deadline changed the answers"
        )
        engine.cache.clear()
        samples: list = []
        benchmark.pedantic(
            _paired_round(
                _cold_workload(engine, measure, None),
                _cold_workload(engine, measure, 3600.0),
                samples,
            ),
            rounds=ROUNDS,
            iterations=1,
            warmup_rounds=1,
        )
        _gate_and_record(benchmark, scenario, samples)
    finally:
        engine.close()


def test_resilience_overhead_fig7_enum(benchmark):
    """Cold enumeration+ranking: checkpoints on the Figure 7 surface."""
    _overhead_scenario(benchmark, "fig7-enum", "size+monocount")


def test_resilience_overhead_fig11_dist(benchmark):
    """Distributional ranking: checkpoints inside the Figure 11 sweep."""
    _overhead_scenario(benchmark, "fig11-dist", "local-dist")


def test_resilience_chaos_availability(benchmark):
    """Zipf load with periodic whole-pool SIGKILLs: availability + deadlines.

    Every batch runs under a fresh deadline budget; the pool is killed every
    ``KILL_EVERY_BATCHES`` batches once it exists.  The retry loop must keep
    every admitted request inside budget+grace, and at most 1% of requests
    may fail for any reason.
    """
    kb = clustered_kb(
        num_communities=4, community_size=24, inter_edges=18, seed=53
    )
    engine = ExplanationEngine(
        kb,
        size_limit=4,
        parallelism=2,
        retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.02),
    )
    try:
        stream = sample_request_stream(
            kb,
            CHAOS_REQUESTS,
            seed=31,
            unique_pairs=max(10, CHAOS_REQUESTS // 8),
            size_limit=4,
        )
        answered = 0
        failed = 0
        kills = 0
        worst_batch_s = 0.0
        deadline_violations = 0
        batches = [
            stream[offset : offset + BATCH_SIZE]
            for offset in range(0, len(stream), BATCH_SIZE)
        ]

        def chaos_run():
            nonlocal answered, failed, kills, worst_batch_s
            nonlocal deadline_violations
            for index, batch in enumerate(batches):
                if index % KILL_EVERY_BATCHES == 0 and engine.executor is not None:
                    for pid in engine.executor.worker_pids():
                        os.kill(pid, signal.SIGKILL)
                    kills += 1
                started = time.perf_counter()
                with deadline_scope(DEADLINE_S):
                    results = engine.explain_batch(batch)
                elapsed = time.perf_counter() - started
                worst_batch_s = max(worst_batch_s, elapsed)
                if elapsed > DEADLINE_S + GRACE_S:
                    deadline_violations += 1
                for result in results:
                    if isinstance(result, RexError):
                        failed += 1
                    else:
                        answered += 1

        benchmark.pedantic(chaos_run, rounds=1, iterations=1)
        total = answered + failed
        availability = answered / total if total else 0.0
        benchmark.group = f"{GROUP}-chaos"
        benchmark.extra_info.update(
            {
                "scenario": "chaos-availability",
                "requests": total,
                "answered": answered,
                "failed": failed,
                "pool_kills": kills,
                "worker_crash_retries": engine.metrics.counter(
                    "engine.worker_crash_retries"
                ).value,
                "pool_recycles": (
                    engine.executor.stats.recycles if engine.executor else 0
                ),
                "availability": round(availability, 4),
                "deadline_s": DEADLINE_S,
                "grace_s": GRACE_S,
                "worst_batch_s": round(worst_batch_s, 4),
                "deadline_violations": deadline_violations,
                "min_availability": MIN_AVAILABILITY,
                "breaker_state": engine.breaker.state,
            }
        )
        assert kills >= 2, "the chaos schedule never actually killed the pool"
        assert deadline_violations == 0, (
            f"{deadline_violations} batches ran past the "
            f"{DEADLINE_S}s budget + {GRACE_S}s grace "
            f"(worst {worst_batch_s:.3f}s)"
        )
        if MIN_AVAILABILITY > 0:
            assert availability >= MIN_AVAILABILITY, (
                f"availability {availability:.2%} under injected kills is "
                f"below the {MIN_AVAILABILITY:.0%} floor "
                f"({failed}/{total} failed)"
            )
    finally:
        engine.close()
