"""Shared fixtures for the benchmark harness.

The paper's experiments run over a DBpedia entertainment extract with 200K
entities on a 2009 MacBook Pro; the benchmarks here run over the synthetic
entertainment knowledge base at a laptop-friendly scale (the paper itself
notes that graph *density*, not total size, drives enumeration cost).  The
goal is to reproduce the *shape* of every figure and table: which algorithm
wins, by roughly what factor, and where the crossovers are.

Environment knobs:

* ``REX_BENCH_PAIRS_PER_BUCKET`` — how many entity pairs to sample per
  connectedness bucket (default 3; the paper uses 10).
* ``REX_BENCH_SEED`` — random seed for the synthetic KB and pair sampling.
* ``REX_BENCH_JSON`` — when set, write a machine-readable record of every
  benchmark that ran (wall time, pytest-benchmark mean, ``stats`` counters
  from ``extra_info``) to this path at session end.
* ``REX_BENCH_BASELINE`` — path to a previously written record; per-benchmark
  speedups against it are folded into the output (this is how
  ``BENCH_pr1.json`` documents the indexed-adjacency speedups in-repo).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time

import pytest

from repro.datasets.entertainment import EntertainmentConfig, generate_entertainment_kb
from repro.datasets.paper_example import paper_example_kb
from repro.evaluation.pairs import sample_pairs_by_connectedness

PAIRS_PER_BUCKET = int(os.environ.get("REX_BENCH_PAIRS_PER_BUCKET", "3"))
BENCH_SEED = int(os.environ.get("REX_BENCH_SEED", "7"))

#: Pattern size limit used throughout the paper's experiments.
SIZE_LIMIT = 5
#: Smaller limit used where the NaiveEnum baseline participates (it is the
#: point of Figure 7 that the baseline is orders of magnitude slower).
NAIVE_SIZE_LIMIT = 4


@pytest.fixture(scope="session")
def bench_kb():
    """The synthetic entertainment KB all performance benchmarks run against."""
    config = EntertainmentConfig(
        num_persons=220,
        num_movies=150,
        cast_size=4.5,
        popularity_exponent=1.15,
        seed=BENCH_SEED,
    )
    return generate_entertainment_kb(config)


@pytest.fixture(scope="session")
def paper_kb():
    """The running-example KB used for the effectiveness experiments."""
    return paper_example_kb()


@pytest.fixture(scope="session")
def bench_pairs(bench_kb):
    """Entity pairs per connectedness bucket (low / medium / high)."""
    buckets = sample_pairs_by_connectedness(
        bench_kb,
        pairs_per_bucket=PAIRS_PER_BUCKET,
        length_limit=4,
        seed=BENCH_SEED,
        entity_type="person",
    )
    for name, pairs in buckets.items():
        assert pairs, f"no benchmark pairs sampled for the {name} bucket"
    return buckets


# ---------------------------------------------------------------------------
# Machine-readable benchmark records (BENCH_pr1.json)
# ---------------------------------------------------------------------------

#: nodeid -> record; filled by the hook below, flushed at session end.
_BENCH_RECORDS: dict[str, dict] = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record timings plus metadata for every test that ran a benchmark."""
    start = time.perf_counter()
    yield
    duration = time.perf_counter() - start
    benchmark = getattr(item, "funcargs", {}).get("benchmark")
    stats = getattr(benchmark, "stats", None) if benchmark is not None else None
    if stats is None:
        # Not a benchmark (or skipped before measuring): nothing to record.
        return
    record: dict = {"wall_time_s": round(duration, 6)}
    group = getattr(benchmark, "group", None)
    if group:
        record["group"] = group
    extra = getattr(benchmark, "extra_info", None)
    if extra:
        record["extra_info"] = dict(extra)
    try:
        record["benchmark_min_s"] = round(stats.stats.min, 6)
        record["benchmark_mean_s"] = round(stats.stats.mean, 6)
    except Exception:  # pragma: no cover - stats shape varies
        pass
    _BENCH_RECORDS[item.nodeid] = record


def _measured_time(record: dict) -> float | None:
    """Preferred duration of a record: best benchmark round, else wall time.

    The minimum over rounds is the steady-state cost (later rounds run with
    warm plan/step caches, exactly how the algorithms are used inside one
    workload); wall time additionally contains fixture and collection noise.
    """
    value = record.get(
        "benchmark_min_s", record.get("benchmark_mean_s", record.get("wall_time_s"))
    )
    return float(value) if value is not None else None


def pytest_sessionfinish(session, exitstatus):
    """Flush the benchmark records (and speedups vs a baseline) to JSON."""
    output_path = os.environ.get("REX_BENCH_JSON")
    if not output_path or not _BENCH_RECORDS:
        return
    payload: dict = {
        "meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "pairs_per_bucket": PAIRS_PER_BUCKET,
            "seed": BENCH_SEED,
            "global_samples": os.environ.get("REX_BENCH_GLOBAL_SAMPLES", "20"),
            "recorded_at_unix": int(time.time()),
        },
        "benchmarks": _BENCH_RECORDS,
    }
    baseline_path = os.environ.get("REX_BENCH_BASELINE")
    if baseline_path and os.path.exists(baseline_path):
        with open(baseline_path) as handle:
            baseline = json.load(handle)
        baseline_marks = baseline.get("benchmarks", {})
        speedups: dict[str, float] = {}
        for nodeid, record in _BENCH_RECORDS.items():
            base_record = baseline_marks.get(nodeid)
            if not base_record:
                continue
            current = _measured_time(record)
            base = _measured_time(base_record)
            if current and base and current > 0:
                speedups[nodeid] = round(base / current, 2)
        payload["baseline_meta"] = baseline.get("meta", {})
        payload["baseline"] = {
            nodeid: _measured_time(record)
            for nodeid, record in baseline_marks.items()
        }
        payload["speedups"] = speedups
        # Aggregate per benchmark group (e.g. one Figure 7 connectedness
        # bucket): total baseline time over total current time.  These are
        # the headline numbers — per-entry ratios of sub-millisecond
        # benchmarks are dominated by timer noise.
        group_totals: dict[str, list[float]] = {}
        for nodeid, record in _BENCH_RECORDS.items():
            base_record = baseline_marks.get(nodeid)
            group = record.get("group")
            if not group or not base_record:
                continue
            current = _measured_time(record)
            base = _measured_time(base_record)
            if current and base:
                totals = group_totals.setdefault(group, [0.0, 0.0])
                totals[0] += base
                totals[1] += current
        payload["group_speedups"] = {
            group: round(base_total / current_total, 2)
            for group, (base_total, current_total) in sorted(group_totals.items())
            if current_total > 0
        }
    with open(output_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
