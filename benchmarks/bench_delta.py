"""Delta-versioned writes under a mixed serving load (PR 8, BENCH_pr8.json).

Before this PR a single ``add_edges`` call nuked the world: every compiled
CSR plane was dropped (the next read paid a full recompile) and every cache
entry was purged.  This benchmark drives the serving engine with the mixed
workload that behaviour punished — a warmed read set interleaved with small
writes — and gates the two properties the delta overlay is for:

* **no full recompile on overlay-sized writes** — ``engine.kb_compiles``
  must stay at 1 (the initial compile) across every write round; each write
  is absorbed as a ``delta_merge`` and the overlay stays below the
  compaction threshold;
* **scoped invalidation keeps the cache warm** — with writes confined to one
  community of a clustered KB (batches sized at ~1% of the edge count), the
  fraction of cache entries retained across all write rounds must stay at or
  above ``REX_BENCH_DELTA_MIN_RETENTION`` (``make bench-delta-check`` sets
  0.5; default 0 records without gating).

A second benchmark records the write-round latency of the overlay path
against an engine forced to compact on every write
(``delta_compact_edges=0``, the closest in-API stand-in for the old
rebuild-the-world cost), as documentation of what an overlay-sized write
saves.

Environment knobs:

* ``REX_BENCH_DELTA_MIN_RETENTION`` — minimum cache retention fraction
  (default 0 = record only).
* ``REX_BENCH_DELTA_WRITE_ROUNDS`` — write/read rounds (default 10).
* ``REX_BENCH_DELTA_WRITE_BATCH`` — edges per write batch (default 15,
  ~1% of the workload KB's ~1.5k edges).
"""

from __future__ import annotations

import os
import random

from repro.service.engine import ExplanationEngine
from repro.workloads import clustered_kb

GROUP = "delta-overlay"

MIN_RETENTION = float(os.environ.get("REX_BENCH_DELTA_MIN_RETENTION", "0"))
WRITE_ROUNDS = int(os.environ.get("REX_BENCH_DELTA_WRITE_ROUNDS", "10"))
WRITE_BATCH = int(os.environ.get("REX_BENCH_DELTA_WRITE_BATCH", "15"))

SIZE_LIMIT = 3
TOP_K = 5
NUM_COMMUNITIES = 8
COMMUNITY_SIZE = 50
#: community every write lands in; pairs from the other 7 are candidates to
#: survive scoped invalidation
WRITE_COMMUNITY = 0


def _workload_kb():
    return clustered_kb(
        num_communities=NUM_COMMUNITIES,
        community_size=COMMUNITY_SIZE,
        intra_degree=4,
        inter_edges=16,
        seed=7,
    )


def _member(community: int, index: int) -> str:
    return f"c{community:02d}_n{index:04d}"


def _warm_pairs() -> list[tuple[str, str]]:
    """Four in-community pairs per community (32 cache entries)."""
    return [
        (_member(community, offset), _member(community, offset + 5))
        for community in range(NUM_COMMUNITIES)
        for offset in (0, 10, 20, 30)
    ]


def _write_batches(rng: random.Random) -> list[list[dict]]:
    """WRITE_ROUNDS batches of WRITE_BATCH new edges, all in one community.

    Every edge attaches a brand-new entity to an existing community member,
    so no write is ever a duplicate and the dirty frontier stays inside the
    written community (plus whatever the inter-community bridges reach).
    """
    batches = []
    serial = 0
    for _ in range(WRITE_ROUNDS):
        batch = []
        for _ in range(WRITE_BATCH):
            batch.append(
                {
                    "source": _member(WRITE_COMMUNITY, rng.randrange(COMMUNITY_SIZE)),
                    "target": f"delta_w{serial:05d}",
                    "label": "rel0",
                }
            )
            serial += 1
        batches.append(batch)
    return batches


def test_delta_mixed_read_write(benchmark):
    """The headline workload: warm reads interleaved with 1%-edge writes."""
    kb = _workload_kb()
    edges_before = kb.num_edges
    engine = ExplanationEngine(kb, size_limit=SIZE_LIMIT)
    totals = {"purged": 0, "retained": 0, "hits": 0, "reads": 0}
    try:
        pairs = _warm_pairs()
        engine.warmup(pairs, k=TOP_K)
        batches = _write_batches(random.Random(99))

        def run():
            for batch in batches:
                summary = engine.add_edges(batch)
                totals["purged"] += summary["cache_purged"]
                totals["retained"] += summary["cache_retained"]
                for start, end in pairs:
                    outcome = engine.explain(start, end, k=TOP_K)
                    totals["reads"] += 1
                    totals["hits"] += 1 if outcome.cached else 0

        benchmark.pedantic(run, rounds=1, iterations=1)

        counters = engine.metrics.snapshot()["counters"]
        gauges = engine.metrics.snapshot()["gauges"]
        decided = totals["purged"] + totals["retained"]
        retention = totals["retained"] / decided if decided else 0.0
        write_fraction = WRITE_BATCH / edges_before

        benchmark.group = f"{GROUP}-mixed"
        benchmark.extra_info.update(
            {
                "write_rounds": WRITE_ROUNDS,
                "write_batch_edges": WRITE_BATCH,
                "write_batch_fraction_of_kb": round(write_fraction, 4),
                "warm_pairs": len(pairs),
                "cache_retained": totals["retained"],
                "cache_purged": totals["purged"],
                "retention_fraction": round(retention, 4),
                "read_hit_fraction": round(totals["hits"] / totals["reads"], 4),
                "kb_compiles": counters["engine.kb_compiles"],
                "delta_merges": counters["engine.delta_merges"],
                "delta_compactions": counters.get("engine.delta_compactions", 0),
                "overlay_edges_final": gauges["kb.overlay_edges"],
                "min_retention": MIN_RETENTION,
            }
        )

        # overlay-sized writes must never trigger a full recompile: the one
        # compile is the initial warmup compile, every write is a delta merge
        assert counters["engine.kb_compiles"] == 1, (
            f"full recompile on an overlay-sized write: "
            f"{counters['engine.kb_compiles']} compiles after {WRITE_ROUNDS} writes"
        )
        assert counters["engine.delta_merges"] == WRITE_ROUNDS
        assert counters.get("engine.delta_compactions", 0) == 0, (
            "workload was meant to stay overlay-sized"
        )
        assert write_fraction <= 0.015, "write batches drifted past ~1% of edges"
        if MIN_RETENTION > 0:
            assert retention >= MIN_RETENTION, (
                f"scoped invalidation retained only {retention:.1%} of the cache "
                f"(floor {MIN_RETENTION:.0%}) under {WRITE_BATCH}-edge writes"
            )
    finally:
        engine.close()


def test_delta_write_latency_overlay_vs_compact(benchmark):
    """Write-round latency: overlay absorption vs compact-on-every-write."""
    batches = _write_batches(random.Random(17))
    overlay_engine = ExplanationEngine(_workload_kb(), size_limit=SIZE_LIMIT)
    compact_engine = ExplanationEngine(
        _workload_kb(), size_limit=SIZE_LIMIT, delta_compact_edges=0
    )
    try:
        import time

        pair = (_member(3, 0), _member(3, 5))
        for engine in (overlay_engine, compact_engine):
            engine.explain(*pair, k=TOP_K)  # prime the compile

        def timed(engine):
            t0 = time.perf_counter()
            for batch in batches:
                engine.add_edges(batch)
                engine.explain(*pair, k=TOP_K)
            return time.perf_counter() - t0

        samples = {"overlay": [], "compact": []}

        def run():
            # interleaved so machine-state drift hits both sides equally
            samples["overlay"].append(timed(overlay_engine))
            samples["compact"].append(timed(compact_engine))

        # mutating workload: fresh edge names per round keep writes real
        benchmark.pedantic(run, rounds=1, iterations=1)
        overlay_s = min(samples["overlay"])
        compact_s = min(samples["compact"])
        benchmark.group = f"{GROUP}-write-latency"
        benchmark.extra_info.update(
            {
                "write_rounds": WRITE_ROUNDS,
                "write_batch_edges": WRITE_BATCH,
                "overlay_s": round(overlay_s, 6),
                "compact_every_write_s": round(compact_s, 6),
                "overlay_speedup": round(compact_s / overlay_s, 2)
                if overlay_s > 0
                else None,
                "overlay_compactions": overlay_engine.metrics.snapshot()["counters"][
                    "engine.delta_compactions"
                ],
                "forced_compactions": compact_engine.metrics.snapshot()["counters"][
                    "engine.delta_compactions"
                ],
            }
        )
        assert (
            overlay_engine.metrics.snapshot()["counters"]["engine.kb_compiles"] == 1
        )
    finally:
        overlay_engine.close()
        compact_engine.close()
