"""Process-pool execution of independent explanation work (scale-out batch).

The serving engine of :mod:`repro.service` answers a batch one request at a
time on the calling thread; every explanation is CPU-bound pure Python, so a
single process cannot use more than one core no matter how many server threads
accept connections.  :class:`ParallelBatchExecutor` shards that work across
worker *processes*, organised as a **supervised replica fleet**
(:class:`~repro.resilience.supervisor.ReplicaFleet`):

* each worker replica is its own single-worker pool holding a **read-only KB
  replica** built once from a :func:`~repro.parallel.snapshot.kb_to_payload`
  snapshot and keyed by the source KB's
  :attr:`~repro.kb.graph.KnowledgeBase.version`;
* batches are **chunked** and dispatched longest-expected-first (endpoint
  degree is the cost proxy) to the least-loaded healthy replica — greedy LPT
  scheduling with health-aware routing: SUSPECT replicas are routed around,
  DEAD ones are killed and replaced (hot standby first, so a replica death
  costs no cold start);
* a **straggling chunk** past the fleet's p95-based hedge threshold gets a
  backup submission on another healthy replica; the first result wins, the
  loser is cancelled, and completed hedge pairs are asserted byte-identical;
* results are **reassembled in submission order** regardless of completion
  order, so callers observe exactly the sequential result list;
* a KB mutation bumps the version and the next batch **recycles** the fleet:
  a fresh snapshot is taken and new replicas are spawned, while chunks
  already in flight on the old fleet finish against their (still internally
  consistent) old replicas and stay labelled with the old version;
* a dying worker (OOM-kill, segfault, ``kill -9``) triggers transparent
  **failover** to a surviving replica; only when *every* replica has failed
  does the batch surface :class:`WorkerCrashError` — never a hang — and
  poison the fleet so the next batch recycles it.

Besides whole requests, the executor also shards the *per-pair distributional
sweeps* of :mod:`repro.ranking.distributional_pruning`:
:meth:`ParallelBatchExecutor.sweep_positions` splits the start-entity list of
one position computation across workers and merges the partial positions.

The executor is deliberately independent of the serving engine: it maps plain
request tuples to ranked tuples and leaves caching, single-flight and outcome
envelopes to the caller.  Fleet operations (:meth:`fleet_snapshot`,
:meth:`drain`, :meth:`rolling_restart`) back the engine's ``fleet()`` status
and the server's ``/admin/drain`` + rolling-restart endpoints.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, ContextManager, Sequence

from repro import Rex
from repro.core.pattern import ExplanationPattern
from repro.enumeration.framework import DEFAULT_SIZE_LIMIT
from repro.errors import RexError
from repro.kb.graph import KnowledgeBase
from repro.kb.sql import sweep_position_count
from repro.measures.base import Measure
from repro.obs.trace import Span, Trace, activate_trace, deactivate_trace
from repro.parallel.snapshot import (
    checkpoint_payload,
    kb_from_payload,
    kb_to_payload,
    overlay_payload,
)
from repro.resilience.deadline import (
    Deadline,
    activate_deadline,
    current_deadline,
    deactivate_deadline,
)
from repro.resilience.supervisor import FleetExhausted, ReplicaFleet

__all__ = ["ExecutorStats", "ParallelBatchExecutor", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """Every replica failed; the batch could not be completed.

    A single worker death no longer surfaces here — the fleet fails the
    chunk over to a surviving replica.  This is raised only when the whole
    fleet is gone (or failover itself keeps crashing), instead of hanging or
    returning partial results.  The fleet is poisoned: the next batch
    transparently recycles it with fresh replicas, so even a total loss
    costs one failed batch, not a dead executor.
    """


# ---------------------------------------------------------------------------
# Worker-process side.  One module-level slot per worker holds the replica;
# ProcessPoolExecutor's initializer fills it before the first chunk arrives.
# ---------------------------------------------------------------------------

_WORKER: dict[str, Any] = {}


def _init_worker(payload: tuple, size_limit: int) -> None:
    """Build this worker's read-only KB replica and Rex facade (once)."""
    kb, version = kb_from_payload(payload)
    rex = Rex(kb, size_limit=size_limit)
    _WORKER["rex"] = rex
    _WORKER["version"] = version
    _WORKER["measures"] = rex.measures()


def _run_chunk(
    chunk: Sequence[tuple[int, str, str, str, int, int]],
    trace_id: str | None = None,
    deadline_s: float | None = None,
) -> tuple[int, float, int, list[tuple[int, bool, Any]], tuple | None]:
    """Explain every item of one chunk against the worker's replica.

    Items are ``(index, v_start, v_end, measure_name, k, size_limit)``; the
    measure name was validated by the parent, so lookups cannot miss.  Returns
    ``(pid, cpu_seconds, replica_version, results, trace_export)`` where each
    result is ``(index, ok, ranked_tuple | RexError)``.  CPU seconds are
    measured with ``time.process_time`` so the number is meaningful even when
    the host time-slices more workers than it has cores.

    With a ``trace_id`` (the coordinator's batch trace is sampled) the chunk
    runs under a worker-local :class:`~repro.obs.trace.Trace`: the enumeration
    and ranking span hooks record into it, and the spans come back as
    ``trace_export = (worker_wall_start, exported_span_tuples)`` for the
    coordinator to graft under its dispatch span — ``perf_counter`` offsets
    do not survive a process boundary, the wall-clock start does.

    ``deadline_s`` is the coordinator's *remaining* budget at dispatch time;
    the chunk re-arms it as a worker-local deadline, so the enumeration
    checkpoints fire inside the worker too.  Expiry surfaces per item as a
    :class:`~repro.errors.DeadlineExceeded` (a ``RexError``), never a crash.
    """
    rex: Rex = _WORKER["rex"]
    measures: dict[str, Measure] = _WORKER["measures"]
    results: list[tuple[int, bool, Any]] = []
    worker_trace: Trace | None = None
    token = None
    root = None
    deadline_token = None
    if deadline_s is not None:
        # a budget already spent at dispatch time still arms (clamped to an
        # epsilon), so every item reports expiry instead of crashing here
        deadline_token = activate_deadline(Deadline(max(deadline_s, 1e-9)))
    if trace_id is not None:
        worker_trace = Trace("worker", trace_id=trace_id)
        token = activate_trace(worker_trace)
        root = worker_trace.span("worker")
        root.__enter__()
        root.annotate(pid=os.getpid(), items=len(chunk))
    cpu_started = time.process_time()
    try:
        for index, v_start, v_end, measure_name, k, size_limit in chunk:
            try:
                ranked = tuple(
                    rex.explain(
                        v_start,
                        v_end,
                        measure=measures[measure_name],
                        k=k,
                        size_limit=size_limit,
                    )
                )
                results.append((index, True, ranked))
            except RexError as error:
                # e.g. an entity newer than this replica: reported per item,
                # the caller decides whether to retry against the live KB
                results.append((index, False, error))
    finally:
        cpu_seconds = time.process_time() - cpu_started
        if deadline_token is not None:
            deactivate_deadline(deadline_token)
        if worker_trace is not None:
            root.__exit__(None, None, None)
            deactivate_trace(token)
            worker_trace.finish()
    trace_export = (
        (worker_trace.started_wall, worker_trace.export_spans())
        if worker_trace is not None
        else None
    )
    return os.getpid(), cpu_seconds, _WORKER["version"], results, trace_export


def _run_sweep(
    pattern: ExplanationPattern,
    start_entities: Sequence[str],
    own_count: float,
    v_start: str,
    v_end: str,
    deadline_s: float | None = None,
) -> tuple[int, float, int, int]:
    """One shard of a distributional position computation.

    Counts, over this shard's start entities, how many (start, end) groups
    bind the pattern more often than ``own_count`` — the inner loop of
    :func:`repro.ranking.distributional_pruning._rank_by_position`, run
    against the worker's replica.  Returns ``(pid, cpu_seconds, position,
    bindings_enumerated)``.
    """
    rex: Rex = _WORKER["rex"]
    cpu_started = time.process_time()
    deadline_token = None
    if deadline_s is not None:
        deadline_token = activate_deadline(Deadline(max(deadline_s, 1e-9)))
    try:
        position, bindings_enumerated = sweep_position_count(
            rex.kb, pattern, start_entities, own_count, v_start, v_end
        )
    finally:
        if deadline_token is not None:
            deactivate_deadline(deadline_token)
    cpu_seconds = time.process_time() - cpu_started
    return os.getpid(), cpu_seconds, position, bindings_enumerated


# ---------------------------------------------------------------------------
# Hedge byte-identity.  A hedged chunk runs on two replicas built from the
# same snapshot, so their *payload* bytes must match; the canonical form
# excludes what legitimately differs between replicas (pid, cpu seconds,
# trace spans) and opts out entirely when any item errored — error messages
# may embed timing (deadline budgets) that two runs will not share.
# ---------------------------------------------------------------------------


def _chunk_canonical(result: tuple) -> bytes | None:
    _pid, _cpu, replica_version, results, _export = result
    if any(not ok for _, ok, _ in results):
        return None
    try:
        return pickle.dumps(
            (replica_version, results), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception:  # pragma: no cover - unpicklable result: skip compare
        return None


def _sweep_canonical(result: tuple) -> tuple[int, int]:
    _pid, _cpu, position, bindings = result
    return (position, bindings)


# ---------------------------------------------------------------------------
# Parent-process side.
# ---------------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Lifetime counters of one executor (surfaced via engine ``/metrics``)."""

    batches: int = 0
    items: int = 0
    chunks: int = 0
    sweeps: int = 0
    recycles: int = 0
    worker_crashes: int = 0
    #: fleet (re)builds that shipped a checkpoint *path* to the workers
    #: instead of the in-memory plane buffers.
    checkpoint_ships: int = 0
    #: fleet (re)builds that shipped a base checkpoint path plus an overlay
    #: delta (snapshot format 4) instead of the full plane buffers.
    overlay_ships: int = 0
    last_rebuild_s: float = 0.0
    #: pid -> cumulative in-worker CPU seconds (time.process_time).
    worker_cpu_s: dict[int, float] = field(default_factory=dict)
    #: pid -> in-worker CPU seconds of the most recent batch only.  This is
    #: the critical-path measurement the parallel benchmark records: on a
    #: host with at least ``workers`` free cores, batch wall time converges
    #: to ``max(last_batch_worker_cpu_s.values())`` plus dispatch overhead.
    last_batch_worker_cpu_s: dict[int, float] = field(default_factory=dict)

    def snapshot(self) -> dict[str, Any]:
        return {
            "batches": self.batches,
            "items": self.items,
            "chunks": self.chunks,
            "sweeps": self.sweeps,
            "recycles": self.recycles,
            "worker_crashes": self.worker_crashes,
            "checkpoint_ships": self.checkpoint_ships,
            "overlay_ships": self.overlay_ships,
            "last_rebuild_s": round(self.last_rebuild_s, 6),
            "worker_cpu_s": {
                pid: round(seconds, 6) for pid, seconds in self.worker_cpu_s.items()
            },
        }


class ParallelBatchExecutor:
    """Shard independent explanation work across a supervised replica fleet.

    Args:
        kb: the live knowledge base; snapshots are taken from it lazily.
        workers: number of worker replicas (>= 1); each replica is one
            worker process supervised by the fleet.
        size_limit: default pattern size limit the worker facades are built
            with (per-item overrides still apply).
        chunk_size: items per dispatched chunk; default balances dispatch
            overhead against scheduling granularity
            (``max(1, n // (workers * 4))``).
        snapshot_guard: optional factory of a context manager held while the
            KB is snapshotted for a fleet rebuild.  A *mutable* KB shared
            with writers (the serving engine's live-update path) must pass
            its read lock here — snapshotting iterates every adjacency dict,
            and a concurrent writer would tear the replica or crash the
            iteration.
        compiled_provider: optional callable returning the
            :class:`~repro.kb.compiled.CompiledKB` to snapshot instead of
            compiling the live KB from scratch.  Invoked *inside* the
            snapshot guard; the serving engine passes its per-version
            compile cache so a fleet rebuild ships the exact arrays already
            serving requests.
        checkpoint_provider: optional callable returning ``(path, version)``
            of an on-disk checkpoint, or ``None`` when no current one exists.
            Invoked inside the snapshot guard; when the returned version
            matches the live KB, the fleet rebuild ships only the *path*
            (snapshot format 3) and each worker mmap-loads the planes
            itself — the parent pipes bytes to nobody.  A worker that finds
            the file missing or corrupt fails replica initialisation, which
            surfaces as :class:`WorkerCrashError` on the batch and a recycle
            (falling back to byte shipping only if the provider stops
            offering the path).
        overlay_provider: optional callable returning ``(base_checkpoint_path,
            delta_buffers, version)`` when the engine currently serves an
            overlay view whose *root base* matches the on-disk checkpoint, or
            ``None``.  Invoked inside the snapshot guard, tried after the
            exact-version checkpoint (format 3) and before full byte shipping
            (format 2): a recycle after an overlay-sized write then ships the
            delta buffers only, with each worker loading and
            version-validating the shared base checkpoint itself.
        metrics: optional duck-typed metrics registry (``counter``/``gauge``)
            the fleet mirrors its restart/hedge/probe counters and
            per-state replica gauges into.
        fleet_options: optional keyword overrides forwarded to
            :class:`~repro.resilience.supervisor.ReplicaFleet` (probe
            cadence, hedge policy, standby, restart backoff, ...).

    The executor is thread-safe: concurrent batches share the fleet, and
    recycling swaps the fleet atomically while in-flight chunks finish on
    the old one.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        workers: int,
        size_limit: int = DEFAULT_SIZE_LIMIT,
        chunk_size: int | None = None,
        snapshot_guard: Callable[[], ContextManager] | None = None,
        compiled_provider: Callable[[], Any] | None = None,
        checkpoint_provider: Callable[[], tuple[str, int] | None] | None = None,
        overlay_provider: Callable[[], tuple[str, tuple, int] | None] | None = None,
        metrics: Any | None = None,
        fleet_options: dict[str, Any] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._kb = kb
        self.workers = workers
        self.size_limit = size_limit
        self.chunk_size = chunk_size
        self._snapshot_guard = snapshot_guard
        self._compiled_provider = compiled_provider
        self._checkpoint_provider = checkpoint_provider
        self._overlay_provider = overlay_provider
        self._metrics = metrics
        self._fleet_options = dict(fleet_options or {})
        self.stats = ExecutorStats()
        self._lock = threading.Lock()
        self._fleet: ReplicaFleet | None = None
        self._fleet_version: int | None = None
        self._broken = False
        self._closed = False

    # -- fleet lifecycle ---------------------------------------------------

    @property
    def pool_version(self) -> int | None:
        """KB version the current worker replicas were snapshotted at."""
        return self._fleet_version

    def ensure_fresh(self) -> bool:
        """Recycle the fleet if the KB moved on (or the fleet collapsed).

        Returns ``True`` when a (re)build happened.  Called implicitly at the
        start of every batch, so recycling needs no signal from the writer:
        the KB version check *is* the signal.
        """
        with self._lock:
            return self._acquire_fleet()[2]

    def _acquire_fleet(self) -> tuple[ReplicaFleet, int, bool]:
        """Return ``(fleet, replica_version, rebuilt)``; caller holds the lock."""
        if self._closed:
            raise RuntimeError("executor is closed")
        stale = (
            self._fleet is None
            or self._broken
            or self._fleet_version != self._kb.version
        )
        if not stale:
            assert self._fleet is not None and self._fleet_version is not None
            return self._fleet, self._fleet_version, False
        old_fleet = self._fleet
        rebuild_started = time.perf_counter()
        guard = (
            self._snapshot_guard() if self._snapshot_guard is not None else nullcontext()
        )
        shipped_checkpoint = False
        shipped_overlay = False
        with guard:
            # under the guard no writer can run: the payload and the version
            # it is labelled with are one consistent cut of the KB
            checkpoint = (
                self._checkpoint_provider()
                if self._checkpoint_provider is not None
                else None
            )
            overlay = (
                self._overlay_provider()
                if self._overlay_provider is not None
                else None
            )
            if checkpoint is not None and checkpoint[1] == self._kb.version:
                # ship the on-disk checkpoint by path: each worker loads and
                # checksum-verifies the planes itself, nothing is piped
                payload = checkpoint_payload(checkpoint[0])
                version = checkpoint[1]
                shipped_checkpoint = True
            elif overlay is not None and overlay[2] == self._kb.version:
                # ship the root base by checkpoint path plus the small delta
                # by value: an overlay-sized write recycles the fleet without
                # re-piping the full planes
                payload = overlay_payload(overlay[0], overlay[1])
                version = overlay[2]
                shipped_overlay = True
            else:
                source = (
                    self._compiled_provider()
                    if self._compiled_provider is not None
                    else self._kb
                )
                payload = kb_to_payload(source)
                version = source.version

        def replica_factory(
            payload=payload, size_limit=self.size_limit
        ) -> ProcessPoolExecutor:
            # one worker per replica: replicas fail, restart and drain
            # independently, and a pid maps 1:1 to a health record
            return ProcessPoolExecutor(
                max_workers=1,
                initializer=_init_worker,
                initargs=(payload, size_limit),
            )

        fleet = ReplicaFleet(
            replica_factory,
            self.workers,
            metrics=self._metrics,
            name="executor",
            **self._fleet_options,
        )
        fleet.start()
        self._fleet = fleet
        self._fleet_version = version
        self._broken = False
        if shipped_checkpoint:
            self.stats.checkpoint_ships += 1
        if shipped_overlay:
            self.stats.overlay_ships += 1
        if old_fleet is not None:
            self.stats.recycles += 1
            # chunks already submitted keep their own references into the old
            # fleet and finish on it; wait_for_work=False only detaches it
            old_fleet.shutdown(wait_for_work=False)
        self.stats.last_rebuild_s = time.perf_counter() - rebuild_started
        return fleet, version, True

    def rebind(self, kb: KnowledgeBase) -> None:
        """Point the executor at a different live-KB object.

        The serving engine swaps its KB object (same logical content, same
        version) when a checkpoint-restored read-only view is thawed for the
        first write; the executor must follow, or its staleness check and
        fallback snapshots would read the abandoned object forever.  Safe
        while batches are in flight: the version check on the next batch
        decides whether a recycle is needed.
        """
        with self._lock:
            self._kb = kb

    def worker_pids(self) -> list[int]:
        """PIDs of every live worker process, hot standby included.

        Forces lazy replicas (and an in-progress standby build) to finish
        spawning first.  Chiefly for tests and diagnostics — e.g. the
        crash-surfacing test kills all of these and asserts the next batch
        fails cleanly rather than being rescued by a surviving spare.
        """
        with self._lock:
            fleet, _, _ = self._acquire_fleet()
        return fleet.worker_pids()

    def close(self) -> None:
        """Shut the fleet down; idempotent.

        Waits for in-flight chunks (at most one chunk per replica) so the
        interpreter never races a half-dismantled pool at exit.
        """
        with self._lock:
            self._closed = True
            fleet, self._fleet = self._fleet, None
        if fleet is not None:
            fleet.shutdown(wait_for_work=True)

    def __enter__(self) -> "ParallelBatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fleet operations --------------------------------------------------

    def fleet_snapshot(self) -> dict[str, Any] | None:
        """Per-replica health + fleet counters, or None before first use."""
        with self._lock:
            fleet = self._fleet
        return fleet.snapshot() if fleet is not None else None

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait for in-flight fleet work to quiesce; True when drained."""
        with self._lock:
            fleet = self._fleet
        if fleet is None:
            return True
        return fleet.drain(timeout_s)

    def rolling_restart(
        self,
        drain_timeout_s: float = 30.0,
        ready_timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Zero-downtime rolling restart of every replica (make-before-break).

        Builds the fleet first if it has not served yet — an operator can
        roll a freshly booted server.  See
        :meth:`repro.resilience.supervisor.ReplicaFleet.rolling_restart`.
        """
        with self._lock:
            fleet, _, _ = self._acquire_fleet()
        return fleet.rolling_restart(drain_timeout_s, ready_timeout_s)

    # -- batch execution ---------------------------------------------------

    def execute(
        self,
        items: Sequence[tuple[int, str, str, str, int, int]],
        trace: Trace | None = None,
    ) -> dict[int, tuple[bool, Any, int]]:
        """Explain every item on the fleet; reassemble positionally.

        Args:
            items: ``(index, v_start, v_end, measure_name, k, size_limit)``
                tuples.  Indexes are caller-chosen and only used to key the
                result mapping; entities and measure names must already be
                validated against the live KB.
            trace: optional batch trace.  When present the whole dispatch is
                recorded as a ``dispatch`` span, the trace ID is propagated
                into every worker chunk, and the workers' spans are shipped
                back and grafted under the dispatch span — one trace covers
                the fleet.

        Returns:
            ``{index: (ok, ranked_tuple | RexError, replica_version)}`` —
            exactly one entry per submitted item, whatever order chunks
            completed in.

        Raises:
            WorkerCrashError: every replica failed before the batch could
                complete (single-replica crashes fail over transparently).
                No partial results are returned; the fleet is poisoned and
                the next call recycles it.
        """
        if not items:
            return {}
        with self._lock:
            fleet, version, _ = self._acquire_fleet()
            self.stats.batches += 1
            self.stats.items += len(items)
        # Longest-expected-first (greedy LPT): endpoint degree predicts
        # enumeration cost, so dispatching heavy items first keeps the last
        # chunks small and the replicas' finish times close together.
        ordered = sorted(items, key=self._expected_cost, reverse=True)
        chunk_size = self.chunk_size or max(1, len(ordered) // (self.workers * 4))
        chunks = [
            ordered[offset : offset + chunk_size]
            for offset in range(0, len(ordered), chunk_size)
        ]
        results: dict[int, tuple[bool, Any, int]] = {}
        batch_cpu: dict[int, float] = {}
        trace_id = trace.trace_id if trace is not None else None
        dispatch_span = trace.span("dispatch") if trace is not None else None
        # Ship the coordinator's remaining budget into every chunk so the
        # cooperative checkpoints keep firing across the process boundary.
        ambient = current_deadline()
        deadline_s = ambient.remaining() if ambient is not None else None
        try:
            if dispatch_span is not None:
                dispatch_span.__enter__()
            tasks = [
                fleet.submit(_run_chunk, chunk, trace_id, deadline_s)
                for chunk in chunks
            ]
            for task in tasks:
                pid, cpu_seconds, replica_version, chunk_results, export = (
                    fleet.result(task, canonical=_chunk_canonical)
                )
                batch_cpu[pid] = batch_cpu.get(pid, 0.0) + cpu_seconds
                for index, ok, value in chunk_results:
                    results[index] = (ok, value, replica_version)
                if export is not None and trace is not None and isinstance(dispatch_span, Span):
                    worker_wall_start, spans = export
                    # rebase the worker's trace-relative offsets onto this
                    # trace's timeline via the shared wall clock, clamped to
                    # the dispatch span's start so minor clock skew cannot
                    # make a child precede its parent
                    offset = max(
                        worker_wall_start - trace.started_wall,
                        dispatch_span.start_s or 0.0,
                    )
                    trace.graft(
                        spans,
                        parent_index=dispatch_span.index,
                        base_offset_s=offset,
                    )
        except FleetExhausted as crash:
            self._poison(fleet)
            raise WorkerCrashError(
                f"a worker process died while executing a batch of "
                f"{len(items)} items: {crash}"
            ) from crash
        finally:
            if dispatch_span is not None:
                dispatch_span.__exit__(None, None, None)
        with self._lock:
            self.stats.chunks += len(chunks)
            self.stats.last_batch_worker_cpu_s = dict(batch_cpu)
            for pid, cpu_seconds in batch_cpu.items():
                self.stats.worker_cpu_s[pid] = (
                    self.stats.worker_cpu_s.get(pid, 0.0) + cpu_seconds
                )
        return results

    def sweep_positions(
        self,
        pattern: ExplanationPattern,
        start_entities: Sequence[str],
        own_count: float,
        v_start: str,
        v_end: str,
    ) -> tuple[int, int]:
        """Shard one distributional position computation across the fleet.

        Splits ``start_entities`` into ``workers`` contiguous shards, counts
        qualifying (start, end) groups in parallel and sums the partial
        positions — the unpruned exact sweep of
        :func:`repro.ranking.distributional_pruning._rank_by_position`.

        Returns:
            ``(position, bindings_enumerated)``.

        Raises:
            WorkerCrashError: every replica died mid-sweep.
        """
        if not start_entities:
            return 0, 0
        with self._lock:
            fleet, _, _ = self._acquire_fleet()
            self.stats.sweeps += 1
        shard_size = max(1, -(-len(start_entities) // self.workers))
        shards = [
            start_entities[offset : offset + shard_size]
            for offset in range(0, len(start_entities), shard_size)
        ]
        position = 0
        bindings = 0
        ambient = current_deadline()
        deadline_s = ambient.remaining() if ambient is not None else None
        try:
            tasks = [
                fleet.submit(
                    _run_sweep, pattern, shard, own_count, v_start, v_end, deadline_s
                )
                for shard in shards
            ]
            for task in tasks:
                pid, cpu_seconds, shard_position, shard_bindings = fleet.result(
                    task, canonical=_sweep_canonical
                )
                position += shard_position
                bindings += shard_bindings
                with self._lock:
                    self.stats.worker_cpu_s[pid] = (
                        self.stats.worker_cpu_s.get(pid, 0.0) + cpu_seconds
                    )
        except FleetExhausted as crash:
            self._poison(fleet)
            raise WorkerCrashError(
                f"a worker process died during a sharded position sweep over "
                f"{len(start_entities)} start entities: {crash}"
            ) from crash
        return position, bindings

    # -- internals ---------------------------------------------------------

    def _poison(self, fleet: ReplicaFleet) -> None:
        """Mark the fleet broken (if still current) after total failure."""
        with self._lock:
            self.stats.worker_crashes += 1
            if self._fleet is fleet:
                self._broken = True

    def _expected_cost(self, item: tuple[int, str, str, str, int, int]) -> int:
        """Scheduling cost proxy: total degree of the pair's endpoints."""
        _, v_start, v_end, _, _, _ = item
        cost = 0
        for entity in (v_start, v_end):
            if self._kb.has_entity(entity):
                cost += self._kb.degree(entity)
        return cost

    def snapshot(self) -> dict[str, Any]:
        """Configuration plus lifetime counters, for ``/metrics``."""
        payload = self.stats.snapshot()
        with self._lock:
            fleet = self._fleet
        payload.update(
            {
                "workers": self.workers,
                "pool_version": self._fleet_version,
                "broken": self._broken,
                "fleet": fleet.snapshot() if fleet is not None else None,
            }
        )
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelBatchExecutor(workers={self.workers}, "
            f"pool_version={self._fleet_version}, batches={self.stats.batches})"
        )
