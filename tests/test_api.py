"""Tests for the top-level package API (the Rex facade)."""

from __future__ import annotations

import pytest

import repro
from repro import Rex, paper_example_kb
from repro.errors import RexError
from repro.measures.aggregate import MonocountMeasure


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestRexFacade:
    def test_enumerate(self, paper_kb):
        rex = Rex(paper_kb)
        result = rex.enumerate("brad_pitt", "angelina_jolie", size_limit=4)
        assert result.num_explanations > 0

    def test_explain_with_named_measure(self, paper_kb):
        rex = Rex(paper_kb, size_limit=4)
        ranked = rex.explain("tom_cruise", "nicole_kidman", measure="size", k=2)
        assert 1 <= len(ranked) <= 2
        assert ranked[0].explanation.pattern.num_nodes == 2

    def test_explain_with_measure_instance(self, paper_kb):
        rex = Rex(paper_kb, size_limit=4)
        ranked = rex.explain(
            "tom_cruise", "nicole_kidman", measure=MonocountMeasure(), k=1
        )
        assert len(ranked) == 1

    def test_unknown_measure_name_raises(self, paper_kb):
        with pytest.raises(RexError):
            Rex(paper_kb).explain("a", "b", measure="nonsense")

    def test_measures_listing(self, paper_kb):
        rex = Rex(paper_kb)
        assert "size+monocount" in rex.measures()
        assert "local-dist" in rex.measures()

    def test_size_limit_override(self, paper_kb):
        rex = Rex(paper_kb, size_limit=5)
        ranked = rex.explain("brad_pitt", "angelina_jolie", measure="size", k=50, size_limit=3)
        assert all(entry.explanation.pattern.num_nodes <= 3 for entry in ranked)

    def test_docstring_example_runs(self):
        rex = Rex(paper_example_kb())
        top = rex.explain("tom_cruise", "nicole_kidman", k=1)
        assert top[0].explanation.pattern.num_edges >= 1


class TestFacadeValidation:
    """k / size_limit are validated at the facade boundary with clear errors."""

    @pytest.mark.parametrize("k", [0, -1, -10])
    def test_non_positive_k_rejected(self, paper_kb, k):
        with pytest.raises(RexError, match="positive integer"):
            Rex(paper_kb).explain("tom_cruise", "nicole_kidman", k=k)

    @pytest.mark.parametrize("k", ["5", 2.0, None, True])
    def test_non_integer_k_rejected(self, paper_kb, k):
        with pytest.raises(RexError, match="positive integer"):
            Rex(paper_kb).explain("tom_cruise", "nicole_kidman", k=k)

    @pytest.mark.parametrize("size_limit", [1, 0, -3, "5", 2.5, True])
    def test_bad_size_limit_rejected_in_explain(self, paper_kb, size_limit):
        with pytest.raises(RexError, match="size_limit"):
            Rex(paper_kb).explain(
                "tom_cruise", "nicole_kidman", size_limit=size_limit
            )

    def test_bad_size_limit_rejected_in_constructor(self, paper_kb):
        with pytest.raises(RexError, match="size_limit"):
            Rex(paper_kb, size_limit=1)

    def test_bad_size_limit_rejected_in_enumerate(self, paper_kb):
        with pytest.raises(RexError, match="size_limit"):
            Rex(paper_kb).enumerate("tom_cruise", "nicole_kidman", size_limit=1)

    def test_valid_boundary_values_accepted(self, paper_kb):
        rex = Rex(paper_kb, size_limit=2)
        ranked = rex.explain("tom_cruise", "nicole_kidman", k=1, size_limit=2)
        assert len(ranked) == 1
