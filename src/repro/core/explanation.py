"""Relationship explanations: a pattern together with its instances.

For a pair of entities the paper defines a relationship explanation as the
pair ``(p, I_p)`` where ``p`` is an explanation pattern and ``I_p`` the set of
its instances in the knowledge base.  :class:`Explanation` is the immutable
container used throughout enumeration and ranking.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator

from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern
from repro.errors import InstanceError

__all__ = ["Explanation"]


class Explanation:
    """An explanation ``(pattern, instances)`` for one target entity pair.

    The instance collection is stored as a sorted tuple so explanations are
    hashable and their iteration order is deterministic.

    Example:
        >>> from repro.core.pattern import PatternEdge
        >>> pattern = ExplanationPattern.from_edges(
        ...     [PatternEdge("?v0", START, "starring"), PatternEdge("?v0", END, "starring")])
        >>> instance = ExplanationInstance(
        ...     {START: "brad_pitt", END: "angelina_jolie", "?v0": "mr_and_mrs_smith"})
        >>> explanation = Explanation(pattern, [instance])
        >>> explanation.num_instances
        1
    """

    __slots__ = ("_pattern", "_instances", "__dict__")

    def __init__(
        self,
        pattern: ExplanationPattern,
        instances: Iterable[ExplanationInstance],
    ) -> None:
        unique = sorted(set(instances), key=lambda instance: instance.items())
        for instance in unique:
            if instance.variables() != pattern.variables:
                raise InstanceError(
                    "instance binds a different variable set than the pattern: "
                    f"{sorted(instance.variables())} vs {sorted(pattern.variables)}"
                )
        self._pattern = pattern
        self._instances = tuple(unique)

    # -- accessors ---------------------------------------------------------

    @property
    def pattern(self) -> ExplanationPattern:
        return self._pattern

    @property
    def instances(self) -> tuple[ExplanationInstance, ...]:
        return self._instances

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    @property
    def has_instances(self) -> bool:
        return bool(self._instances)

    @property
    def size(self) -> int:
        """Pattern size = number of variables (the paper's size measure basis)."""
        return self._pattern.num_nodes

    def is_path(self) -> bool:
        """Whether the underlying pattern is a simple start-to-end path."""
        return self._pattern.is_path()

    def __iter__(self) -> Iterator[ExplanationInstance]:
        return iter(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    # -- aggregate helpers (used by the measures of Section 4.2) -------------

    @cached_property
    def target_pair(self) -> tuple[str, str] | None:
        """The ``(v_start, v_end)`` pair witnessed by the instances, if any."""
        if not self._instances:
            return None
        first = self._instances[0]
        return (first.start_entity, first.end_entity)

    def assignments(self, variable: str) -> set[str]:
        """Distinct entities assigned to ``variable`` over all instances.

        This is the paper's ``uniq(v)`` used to define the monocount measure.
        The result is cached per variable: the merge step of PathUnion uses
        assignment sets to discard hopeless variable mappings early.
        """
        cache: dict[str, set[str]] = self.__dict__.setdefault("_assignment_cache", {})
        if variable not in cache:
            cache[variable] = {instance[variable] for instance in self._instances}
        return cache[variable]

    def uniq(self, variable: str) -> int:
        """``|uniq(v)|``: number of distinct assignments of ``variable``."""
        return len(self.assignments(variable))

    def count(self) -> int:
        """The count aggregate: number of distinct instances."""
        return len(self._instances)

    def monocount(self) -> int:
        """The monocount aggregate (Section 4.2).

        The minimum over non-target variables of the number of distinct
        assignments; defined to be 1 when the pattern has no non-target
        variable (a direct edge between the targets).
        """
        non_target = self._pattern.non_target_variables
        if not non_target:
            return 1 if self._instances else 0
        if not self._instances:
            return 0
        return min(self.uniq(variable) for variable in non_target)

    # -- transformation ----------------------------------------------------

    def with_canonical_names(self) -> "Explanation":
        """Rename variables canonically in both the pattern and the instances."""
        pattern, mapping = self._pattern.with_canonical_names()
        instances = [instance.renamed(mapping) for instance in self._instances]
        return Explanation(pattern, instances)

    def merged_instances_with(self, extra: Iterable[ExplanationInstance]) -> "Explanation":
        """Return a copy with additional instances folded in."""
        return Explanation(self._pattern, list(self._instances) + list(extra))

    # -- dunder ------------------------------------------------------------

    #: ``__dict__`` keys never pickled: per-process merge-kernel caches (the
    #: fast-merge info embeds a process-local pattern token) and the bulky
    #: assignment-set caches — all rebuilt on demand, and shipping them would
    #: inflate every executor result payload.
    _TRANSIENT_CACHES = ("_merge_info", "_fast_merge_info", "_assignment_cache")

    def __getstate__(self):
        extras = {
            key: value
            for key, value in self.__dict__.items()
            if key not in self._TRANSIENT_CACHES
        }
        return (self._pattern, self._instances, extras)

    def __setstate__(self, state) -> None:
        pattern, instances, extras = state
        self._pattern = pattern
        self._instances = instances
        self.__dict__.update(extras)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Explanation):
            return NotImplemented
        return self._pattern == other._pattern and self._instances == other._instances

    def __hash__(self) -> int:
        return hash((self._pattern, self._instances))

    def __repr__(self) -> str:
        return (
            f"Explanation(size={self.size}, edges={self._pattern.num_edges}, "
            f"instances={self.num_instances})"
        )

    def describe(self, max_instances: int = 3) -> str:
        """Human readable multi-line rendering used by the CLI and examples."""
        lines = [self._pattern.describe()]
        lines.append(f"instances ({self.num_instances} total):")
        for instance in self._instances[:max_instances]:
            bindings = ", ".join(
                f"{variable}={entity}"
                for variable, entity in instance.items()
                if variable not in (START, END)
            )
            lines.append(f"  {{{bindings}}}" if bindings else "  {<direct edge>}")
        if self.num_instances > max_instances:
            lines.append(f"  ... and {self.num_instances - max_instances} more")
        return "\n".join(lines)
