"""End-to-end tests for the HTTP/JSON explanation API.

A real ``ThreadingHTTPServer`` is bound to an ephemeral port on localhost and
exercised with ``urllib`` — the same path `make serve-smoke` takes.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets.paper_example import paper_example_kb
from repro.service import ExplanationEngine, create_server, run_in_thread


@pytest.fixture()
def service():
    """A live server on an ephemeral port; yields ``(engine, base_url)``."""
    engine = ExplanationEngine(paper_example_kb(), size_limit=4)
    server = create_server(engine, port=0)
    run_in_thread(server)
    try:
        yield engine, server.url
    finally:
        server.shutdown()
        server.server_close()


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _post(url: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestHealthz:
    def test_reports_kb_shape(self, service):
        engine, url = service
        status, payload = _get(url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["kb_version"] == engine.kb_version
        assert payload["entities"] == engine.kb.num_entities
        assert payload["edges"] == engine.kb.num_edges

    def test_reports_resilience_state(self, service):
        """The breaker and the admission gate are operator-visible."""
        _, url = service
        status, payload = _get(url + "/healthz")
        assert status == 200
        assert payload["breaker"] == "closed"
        resilience = payload["resilience"]
        assert resilience["breaker"]["state"] == "closed"
        assert resilience["admission"]["inflight"] >= 0
        assert resilience["admission"]["max_inflight"] >= 1
        assert resilience["leaked_threads"] == []


class TestExplain:
    def test_end_to_end_json_shape(self, service):
        """The ISSUE's end-to-end test: explain a demo pair, assert the shape."""
        _, url = service
        status, payload = _get(
            url + "/explain?start=tom_cruise&end=nicole_kidman&k=3"
        )
        assert status == 200
        assert payload["start"] == "tom_cruise"
        assert payload["end"] == "nicole_kidman"
        assert payload["measure"] == "size+monocount"
        assert payload["cached"] is False
        assert 1 <= payload["num_results"] <= 3
        assert len(payload["results"]) == payload["num_results"]
        top = payload["results"][0]
        assert top["rank"] == 1
        assert isinstance(top["score"], (int, float))
        explanation = top["explanation"]
        assert explanation["pattern"]["num_nodes"] >= 2
        assert explanation["pattern"]["edges"], "pattern must render its edges"
        for edge in explanation["pattern"]["edges"]:
            assert {"source", "target", "label", "directed"} <= set(edge)
        assert explanation["num_instances"] >= 1
        assert explanation["instances"][0]["?start"] == "tom_cruise"
        assert explanation["instances"][0]["?end"] == "nicole_kidman"

    def test_second_request_is_a_cache_hit(self, service):
        _, url = service
        query = url + "/explain?start=tom_cruise&end=nicole_kidman&k=3"
        _, first = _get(query)
        _, second = _get(query)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["results"] == first["results"]

    def test_missing_parameters_are_400(self, service):
        _, url = service
        status, payload = _get(url + "/explain?start=tom_cruise")
        assert status == 400
        assert "end" in payload["error"]

    def test_unknown_entity_is_404(self, service):
        _, url = service
        status, payload = _get(url + "/explain?start=tom_cruise&end=nobody")
        assert status == 404
        assert "nobody" in payload["error"]

    def test_bad_measure_is_400(self, service):
        _, url = service
        status, payload = _get(
            url + "/explain?start=tom_cruise&end=nicole_kidman&measure=bogus"
        )
        assert status == 400
        assert "bogus" in payload["error"]

    def test_non_integer_k_is_400(self, service):
        _, url = service
        status, payload = _get(
            url + "/explain?start=tom_cruise&end=nicole_kidman&k=three"
        )
        assert status == 400
        assert "k" in payload["error"]

    def test_non_positive_k_is_400(self, service):
        _, url = service
        status, _ = _get(url + "/explain?start=tom_cruise&end=nicole_kidman&k=0")
        assert status == 400

    def test_negative_max_instances_is_400(self, service):
        _, url = service
        status, payload = _get(
            url + "/explain?start=tom_cruise&end=nicole_kidman&max_instances=-1"
        )
        assert status == 400
        assert "max_instances" in payload["error"]

    def test_unknown_route_is_404_and_counted(self, service):
        engine, url = service
        status, payload = _get(url + "/nope")
        assert status == 404
        assert "unknown route" in payload["error"]
        counters = engine.metrics.snapshot()["counters"]
        assert counters["http.requests{GET <unknown>}"] == 1
        assert counters["http.errors"] == 1


class TestBatch:
    def test_batch_answers_and_inline_errors(self, service):
        _, url = service
        status, payload = _post(
            url + "/explain/batch",
            {
                "requests": [
                    {"start": "tom_cruise", "end": "nicole_kidman", "k": 2},
                    {"start": "tom_cruise", "end": "nobody"},
                ]
            },
        )
        assert status == 200
        assert payload["num_requests"] == 2
        assert payload["num_answered"] == 1
        assert payload["results"][0]["num_results"] >= 1
        assert "error" in payload["results"][1]

    def test_malformed_body_is_400(self, service):
        _, url = service
        status, payload = _post(url + "/explain/batch", {"not_requests": []})
        assert status == 400
        assert "requests" in payload["error"]

    def test_non_integer_max_instances_is_400(self, service):
        _, url = service
        status, payload = _post(
            url + "/explain/batch",
            {
                "requests": [{"start": "tom_cruise", "end": "nicole_kidman"}],
                "max_instances": "3",
            },
        )
        assert status == 400
        assert "max_instances" in payload["error"]

    def test_non_object_request_item_is_an_inline_error(self, service):
        _, url = service
        status, payload = _post(
            url + "/explain/batch", {"requests": ["tom_cruise"]}
        )
        assert status == 200
        assert "error" in payload["results"][0]


class TestKbEdges:
    def test_update_bumps_version_and_invalidates_cache(self, service):
        """The ISSUE's cache-invalidation-on-POST test."""
        engine, url = service
        query = url + "/explain?start=brad_pitt&end=angelina_jolie&k=5"
        _, first = _get(query)
        assert first["cached"] is False
        _, again = _get(query)
        assert again["cached"] is True
        enumerations_before = engine.metrics.counter("engine.enumerations").value

        status, summary = _post(
            url + "/kb/edges",
            {
                "edges": [
                    {
                        "source": "new_movie",
                        "target": "brad_pitt",
                        "label": "starring",
                    },
                    {
                        "source": "new_movie",
                        "target": "angelina_jolie",
                        "label": "starring",
                    },
                ]
            },
        )
        assert status == 200
        assert summary["added"] == 2
        assert summary["kb_version"] > first["kb_version"]
        assert summary["cache_purged"] >= 1

        _, after = _get(query)
        assert after["cached"] is False
        assert after["kb_version"] == summary["kb_version"]
        assert (
            engine.metrics.counter("engine.enumerations").value
            == enumerations_before + 1
        )
        # the new co-starring movie shows up as a witness
        witnesses = {
            entity
            for result in after["results"]
            for instance in result["explanation"]["instances"]
            for entity in instance.values()
        }
        assert "new_movie" in witnesses

    def test_malformed_edges_are_400(self, service):
        _, url = service
        status, payload = _post(url + "/kb/edges", {"edges": [{"source": "a"}]})
        assert status == 400
        assert "label" in payload["error"] or "target" in payload["error"]

    def test_invalid_json_body_is_400(self, service):
        _, url = service
        request = urllib.request.Request(
            url + "/kb/edges",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_oversized_body_does_not_desync_keepalive(self, service):
        """A 413 sent without reading the body must close the connection,
        not let the unread bytes be parsed as the next request."""
        import http.client
        from urllib.parse import urlsplit

        _, url = service
        host, port = urlsplit(url).hostname, urlsplit(url).port
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            big_body = b"x" * (2 << 20)  # 2 MiB, over the 1 MiB limit
            try:
                # the server 413s without reading the body and closes the
                # socket; depending on buffer timing the client may see the
                # reset while still sending — an equally valid rejection
                connection.request("POST", "/kb/edges", body=big_body)
                response = connection.getresponse()
                assert response.status == 413
                response.read()
            except (BrokenPipeError, ConnectionResetError):
                return
            # response received: the server must still have closed the
            # connection, so a second request on the same socket must not be
            # answered from the stale body bytes
            with pytest.raises((http.client.HTTPException, OSError)):
                connection.request("GET", "/healthz")
                connection.getresponse()
        finally:
            connection.close()


class TestMetrics:
    def test_metrics_shape(self, service):
        _, url = service
        _get(url + "/explain?start=tom_cruise&end=nicole_kidman&k=2")
        status, payload = _get(url + "/metrics")
        assert status == 200
        assert payload["counters"]["engine.requests"] >= 1
        assert payload["counters"]["http.requests{GET /explain}"] >= 1
        assert payload["histograms"]["engine.explain_latency"]["count"] >= 1
        assert payload["cache"]["capacity"] == 2048
        assert payload["kb"]["entities"] > 0


class TestConcurrentHammer:
    def test_hammer_costs_one_enumeration(self, service):
        """32 concurrent identical requests: exactly one enumeration runs —
        every other request either coalesces onto the in-flight leader or
        hits the cache the leader filled, per the metrics counters."""
        engine, url = service
        query = url + "/explain?start=kate_winslet&end=leonardo_dicaprio&k=5"
        hammers = 32
        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(lambda _: _get(query), range(hammers)))
        assert all(status == 200 for status, _ in results)
        counters = engine.metrics.snapshot()["counters"]
        assert counters["engine.enumerations"] == 1
        assert counters["engine.requests"] == hammers
        # every non-leader request was served without recomputation
        assert (
            counters["engine.cache_hits"] + counters["engine.coalesced"]
            == hammers - 1
        )
        reference = results[0][1]["results"]
        assert all(payload["results"] == reference for _, payload in results)
