"""Command-line interface: explain a pair of entities, or serve explanations.

Usage examples::

    # run against the bundled paper example KB
    rex-explain --demo brad_pitt angelina_jolie

    # run against a TSV edge list with a specific measure and k
    rex-explain --kb edges.tsv --measure local-dist --top 5 alice bob

    # boot the HTTP/JSON explanation server on the demo KB, warmed up
    rex-explain serve --demo --warmup --port 8080

    # one-shot smoke check: boot, hit /healthz and /explain, shut down
    rex-explain serve --demo --smoke

The CLI is intentionally thin: it loads a knowledge base, invokes the same
:class:`repro.Rex` facade (or :mod:`repro.service` engine) the examples use,
and pretty-prints the result.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from pathlib import Path

from repro import Rex
from repro.datasets.entertainment import small_entertainment_kb
from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.errors import RexError
from repro.kb.io import load_json, load_tsv
from repro.measures import default_measures

__all__ = ["build_parser", "build_serve_parser", "main", "serve_main"]


def _add_kb_source_arguments(parser: argparse.ArgumentParser) -> None:
    """The mutually exclusive KB source flags shared by both subcommands."""
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--kb",
        type=Path,
        help="knowledge base file (.tsv edge list or .json document)",
    )
    source.add_argument(
        "--demo",
        action="store_true",
        help="use the bundled paper running-example knowledge base",
    )
    source.add_argument(
        "--synthetic",
        action="store_true",
        help="use the bundled synthetic entertainment knowledge base",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``rex-explain``."""
    parser = argparse.ArgumentParser(
        prog="rex-explain",
        description="Explain why two entities of a knowledge base are related (REX, VLDB 2011).",
    )
    parser.add_argument("v_start", help="the entity the user searched for")
    parser.add_argument("v_end", help="the related entity to explain")
    _add_kb_source_arguments(parser)
    parser.add_argument(
        "--measure",
        default="size+monocount",
        choices=sorted(default_measures()),
        help="interestingness measure used for ranking (default: size+monocount)",
    )
    parser.add_argument("--top", type=int, default=5, help="number of explanations to show")
    parser.add_argument(
        "--size-limit",
        type=int,
        default=5,
        help="maximum number of pattern variables (paper default: 5)",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=3,
        help="number of witnessing instances to print per explanation",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``serve`` subcommand (``rex-serve``)."""
    parser = argparse.ArgumentParser(
        prog="rex-serve",
        description=(
            "Serve relationship explanations over an HTTP/JSON API "
            "(GET /explain, POST /explain/batch, GET /healthz, GET /metrics, "
            "POST /kb/edges)."
        ),
    )
    _add_kb_source_arguments(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8080,
        help="bind port (0 picks an ephemeral port; default: 8080)",
    )
    parser.add_argument(
        "--size-limit",
        type=int,
        default=5,
        help="default pattern size limit for requests (paper default: 5)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=2048,
        help="maximum number of cached rankings (default: 2048)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="optional TTL in seconds for cached rankings (default: no TTL)",
    )
    parser.add_argument(
        "--warmup",
        action="store_true",
        help="precompute the paper's user-study pairs (PAPER_PAIRS) at startup",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "boot on an ephemeral port, request /healthz and one /explain, "
            "print both responses and exit (used by `make serve-smoke`)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request logging"
    )
    return parser


def _load_kb(args: argparse.Namespace):
    if args.kb is not None:
        suffix = args.kb.suffix.lower()
        if suffix == ".json":
            return load_json(args.kb)
        return load_tsv(args.kb)
    if args.synthetic:
        return small_entertainment_kb()
    return paper_example_kb()


def _run_smoke(engine, verbose: bool) -> int:
    """Boot an ephemeral server, hit /healthz and one /explain, shut down."""
    from repro.service import create_server, run_in_thread

    server = create_server(engine, port=0, verbose=False)
    run_in_thread(server)
    try:
        with urllib.request.urlopen(server.url + "/healthz", timeout=10) as response:
            health = json.load(response)
        print(f"GET /healthz -> {json.dumps(health, sort_keys=True)}")
        if health.get("status") != "ok":
            print("error: /healthz did not report status ok", file=sys.stderr)
            return 1
        pair = next(
            (
                (start, end)
                for start, end in PAPER_PAIRS
                if engine.kb.has_entity(start) and engine.kb.has_entity(end)
            ),
            None,
        )
        if pair is None:
            print("error: no smoke pair found in the knowledge base", file=sys.stderr)
            return 1
        # no k override: with --warmup the default-k entry is already cached
        query = f"/explain?start={pair[0]}&end={pair[1]}"
        with urllib.request.urlopen(server.url + query, timeout=30) as response:
            explained = json.load(response)
        print(
            f"GET {query} -> {explained['num_results']} results, "
            f"cached={explained['cached']}, kb_version={explained['kb_version']}"
        )
        if verbose and explained["results"]:
            top = explained["results"][0]
            print(f"top explanation (score={top['score']:g}):")
            print(top["explanation"]["pattern"]["text"])
        print("serve smoke: OK")
        return 0
    finally:
        server.shutdown()
        server.server_close()


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of the ``serve`` subcommand; returns an exit code."""
    from repro.service import ExplanationEngine, serve

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    try:
        kb = _load_kb(args)
        if args.smoke:
            engine = ExplanationEngine(
                kb,
                size_limit=args.size_limit,
                cache_capacity=args.cache_capacity,
                cache_ttl=args.cache_ttl,
            )
            if args.warmup:
                engine.warmup(PAPER_PAIRS)
            return _run_smoke(engine, verbose=not args.quiet)
        serve(
            kb,
            host=args.host,
            port=args.port,
            size_limit=args.size_limit,
            cache_capacity=args.cache_capacity,
            cache_ttl=args.cache_ttl,
            warmup_pairs=PAPER_PAIRS if args.warmup else None,
            verbose=not args.quiet,
        )
    except (RexError, ValueError, OverflowError, OSError) as error:
        # RexError: bad --size-limit; ValueError: bad cache knobs;
        # OverflowError: --port outside 0-65535; OSError: unreadable KB
        # file or port already in use
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    ``rex-explain serve ...`` dispatches to the serving subcommand; anything
    else is the classic one-shot explain flow.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        kb = _load_kb(args)
        rex = Rex(kb, size_limit=args.size_limit)
        ranked = rex.explain(
            args.v_start, args.v_end, measure=args.measure, k=args.top
        )
    except (RexError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if not ranked:
        print(
            f"No explanation with at most {args.size_limit} pattern nodes connects "
            f"{args.v_start!r} and {args.v_end!r}."
        )
        return 0

    print(
        f"Top {len(ranked)} explanations for ({args.v_start}, {args.v_end}) "
        f"by {args.measure}:"
    )
    for rank, entry in enumerate(ranked, start=1):
        print(f"\n#{rank}  score={entry.value:g}")
        print(entry.explanation.describe(max_instances=args.max_instances))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
