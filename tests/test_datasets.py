"""Tests for the bundled datasets (paper example + synthetic generator)."""

from __future__ import annotations

import pytest

from repro.datasets.entertainment import (
    EntertainmentConfig,
    dense_entertainment_kb,
    generate_entertainment_kb,
    small_entertainment_kb,
)
from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.errors import DatasetError


class TestPaperExampleKB:
    def test_contains_paper_entities(self, paper_kb):
        for entity in ("brad_pitt", "tom_cruise", "nicole_kidman", "kate_winslet"):
            assert paper_kb.has_entity(entity)
            assert paper_kb.entity_type(entity) == "person"

    def test_paper_pairs_exist_in_kb(self, paper_kb):
        for v_start, v_end in PAPER_PAIRS:
            assert paper_kb.has_entity(v_start)
            assert paper_kb.has_entity(v_end)

    def test_tom_cruise_nicole_kidman_were_married(self, paper_kb):
        assert paper_kb.has_edge("tom_cruise", "nicole_kidman", "spouse", "any")

    def test_brad_and_tom_costarred_in_interview_with_the_vampire(self, paper_kb):
        assert paper_kb.has_edge("interview_with_the_vampire", "brad_pitt", "starring")
        assert paper_kb.has_edge("interview_with_the_vampire", "tom_cruise", "starring")

    def test_spouse_edges_are_undirected(self, paper_kb):
        spouse_edges = [edge for edge in paper_kb.edges() if edge.label == "spouse"]
        assert spouse_edges
        assert all(not edge.directed for edge in spouse_edges)

    def test_starring_edges_point_from_movie_to_person(self, paper_kb):
        for edge in paper_kb.edges():
            if edge.label == "starring":
                assert paper_kb.entity_type(edge.source) == "movie"
                assert paper_kb.entity_type(edge.target) == "person"

    def test_repeated_construction_is_identical(self):
        first, second = paper_example_kb(), paper_example_kb()
        assert first.num_entities == second.num_entities
        assert first.num_edges == second.num_edges


class TestEntertainmentConfig:
    def test_validation_rejects_tiny_worlds(self):
        with pytest.raises(DatasetError):
            EntertainmentConfig(num_persons=1).validate()

    def test_validation_rejects_bad_fractions(self):
        with pytest.raises(DatasetError):
            EntertainmentConfig(spouse_fraction=1.5).validate()

    def test_validation_rejects_small_cast(self):
        with pytest.raises(DatasetError):
            EntertainmentConfig(cast_size=0.5).validate()


class TestGenerator:
    def test_same_seed_same_kb(self):
        config = EntertainmentConfig(num_persons=50, num_movies=30, seed=99)
        first = generate_entertainment_kb(config)
        second = generate_entertainment_kb(config)
        assert first.num_entities == second.num_entities
        assert first.num_edges == second.num_edges
        assert sorted(e.key() for e in first.edges()) == sorted(
            e.key() for e in second.edges()
        )

    def test_different_seeds_differ(self):
        first = generate_entertainment_kb(EntertainmentConfig(num_persons=50, num_movies=30, seed=1))
        second = generate_entertainment_kb(EntertainmentConfig(num_persons=50, num_movies=30, seed=2))
        assert sorted(e.key() for e in first.edges()) != sorted(
            e.key() for e in second.edges()
        )

    def test_entity_counts_match_config(self, tiny_synthetic_kb):
        assert len(tiny_synthetic_kb.entities_of_type("person")) == 60
        assert len(tiny_synthetic_kb.entities_of_type("movie")) == 40

    def test_expected_relation_vocabulary(self, tiny_synthetic_kb):
        labels = set(tiny_synthetic_kb.relation_labels())
        assert {"starring", "director"} <= labels
        assert labels <= {
            "starring",
            "director",
            "producer",
            "writer",
            "genre",
            "spouse",
            "sibling",
            "award_won",
        }

    def test_every_movie_has_cast_and_director(self, tiny_synthetic_kb):
        for movie in tiny_synthetic_kb.entities_of_type("movie"):
            labels = [entry.label for entry in tiny_synthetic_kb.neighbors(movie)]
            assert labels.count("starring") >= 2
            assert labels.count("director") >= 1

    def test_spouse_edges_are_undirected(self, tiny_synthetic_kb):
        for edge in tiny_synthetic_kb.edges():
            if edge.label in ("spouse", "sibling"):
                assert not edge.directed

    def test_popularity_skew_creates_hubs(self):
        kb = generate_entertainment_kb(
            EntertainmentConfig(num_persons=100, num_movies=80, seed=5)
        )
        degrees = sorted(
            (kb.degree(person) for person in kb.entities_of_type("person")), reverse=True
        )
        assert degrees[0] >= 3 * max(degrees[len(degrees) // 2], 1)

    def test_presets_scale(self):
        small = small_entertainment_kb()
        dense = dense_entertainment_kb()
        assert small.num_entities > 200
        assert dense.density() > small.density()
