"""Tests for lexicographic measure combinations (Section 5.4.1)."""

from __future__ import annotations

import pytest

from repro.core.explanation import Explanation
from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.errors import MeasureError
from repro.measures.aggregate import MonocountMeasure
from repro.measures.combined import (
    LexicographicMeasure,
    size_plus_local_dist,
    size_plus_monocount,
)
from repro.measures.distributional import LocalDistributionMeasure
from repro.measures.structural import SizeMeasure


def costar(movies: list[str]) -> Explanation:
    pattern = ExplanationPattern.from_edges(
        [PatternEdge("?v0", START, "starring"), PatternEdge("?v0", END, "starring")]
    )
    return Explanation(
        pattern,
        [
            ExplanationInstance({START: "tom_cruise", END: "nicole_kidman", "?v0": movie})
            for movie in movies
        ],
    )


def spouse() -> Explanation:
    pattern = ExplanationPattern.direct_edge("spouse", directed=False)
    return Explanation(
        pattern, [ExplanationInstance({START: "tom_cruise", END: "nicole_kidman"})]
    )


class TestLexicographicMeasure:
    def test_requires_components(self):
        with pytest.raises(MeasureError):
            LexicographicMeasure([])

    def test_name_is_derived_from_components(self):
        measure = LexicographicMeasure([SizeMeasure(), MonocountMeasure()])
        assert measure.name == "size+monocount"

    def test_primary_dominates(self, paper_kb):
        measure = size_plus_monocount()
        # The spouse edge is smaller than the co-starring pattern, so it wins
        # even though co-starring has the larger monocount.
        assert measure.value(
            paper_kb, spouse(), "tom_cruise", "nicole_kidman"
        ) > measure.value(
            paper_kb,
            costar(["eyes_wide_shut", "days_of_thunder", "far_and_away"]),
            "tom_cruise",
            "nicole_kidman",
        )

    def test_secondary_breaks_ties(self, paper_kb):
        measure = size_plus_monocount()
        many = costar(["eyes_wide_shut", "days_of_thunder", "far_and_away"])
        few = costar(["eyes_wide_shut"])
        assert measure.value(paper_kb, many, "tom_cruise", "nicole_kidman") > measure.value(
            paper_kb, few, "tom_cruise", "nicole_kidman"
        )

    def test_key_exposes_component_values(self, paper_kb):
        measure = size_plus_monocount()
        key = measure.key(paper_kb, spouse(), "tom_cruise", "nicole_kidman")
        assert key == (-2.0, 1.0)

    def test_anti_monotonic_only_when_all_components_are(self):
        assert size_plus_monocount().is_anti_monotonic
        assert not size_plus_local_dist().is_anti_monotonic
        assert not LexicographicMeasure([LocalDistributionMeasure()]).is_anti_monotonic

    def test_single_component_behaves_like_component(self, paper_kb):
        combined = LexicographicMeasure([SizeMeasure()])
        ordering_combined = combined.value(
            paper_kb, spouse(), "tom_cruise", "nicole_kidman"
        ) > combined.value(paper_kb, costar(["eyes_wide_shut"]), "tom_cruise", "nicole_kidman")
        plain = SizeMeasure()
        ordering_plain = plain.value(
            paper_kb, spouse(), "tom_cruise", "nicole_kidman"
        ) > plain.value(paper_kb, costar(["eyes_wide_shut"]), "tom_cruise", "nicole_kidman")
        assert ordering_combined == ordering_plain


class TestFactories:
    def test_size_plus_monocount_names(self):
        assert size_plus_monocount().name == "size+monocount"

    def test_size_plus_local_dist_names(self):
        assert size_plus_local_dist().name == "size+local-dist"

    def test_size_plus_local_dist_orders_rare_first_within_size(self, paper_kb):
        measure = size_plus_local_dist()
        # Both explanations have 3 nodes; the rarer one (lower position) wins.
        rare = costar(["eyes_wide_shut", "days_of_thunder", "far_and_away"])
        pattern = ExplanationPattern.from_edges(
            [PatternEdge("?v0", START, "starring"), PatternEdge("?v0", END, "starring")]
        )
        common = Explanation(
            pattern,
            [
                ExplanationInstance(
                    {START: "brad_pitt", END: "angelina_jolie", "?v0": "by_the_sea"}
                )
            ],
        )
        rare_value = measure.value(paper_kb, rare, "tom_cruise", "nicole_kidman")
        common_value = measure.value(paper_kb, common, "brad_pitt", "angelina_jolie")
        assert rare_value > common_value
