"""The running-example entertainment knowledge base from the paper.

Figure 3 of the paper shows a small subset of the Yahoo! entertainment
knowledge base around actors such as Brad Pitt, Angelina Jolie, Tom Cruise and
Kate Winslet.  The figure itself is only partially legible from the text, so
this module reconstructs a compatible small KB that supports every concrete
explanation the paper discusses:

* Nicole Kidman and Tom Cruise used to be married (spouse explanation),
* Brad Pitt and Tom Cruise co-starred in *Interview with the Vampire*,
* Brad Pitt and Angelina Jolie are partners and co-starred in
  *Mr. & Mrs. Smith*,
* Kate Winslet and Leonardo DiCaprio co-starred in *Titanic* and
  *Revolutionary Road*, the latter directed by Sam Mendes (the Figure 6
  "collaborated with the same director" example),
* Brad Pitt produced a movie he also starred in (Figure 4(c)), and
* the Figure 4(d) "same director" pattern has instances for Brad Pitt and
  Angelina Jolie.

All examples and a large part of the unit-test suite run against this KB, so
keep additions backwards compatible.
"""

from __future__ import annotations

from repro.kb.graph import KnowledgeBase
from repro.kb.schema import default_entertainment_schema

__all__ = ["paper_example_kb", "PAPER_PAIRS"]

#: The five user-study pairs of Section 5.4.1 (P1..P5).
PAPER_PAIRS = [
    ("brad_pitt", "angelina_jolie"),
    ("kate_winslet", "leonardo_dicaprio"),
    ("tom_cruise", "will_smith"),
    ("james_cameron", "kate_winslet"),
    ("mel_gibson", "helen_hunt"),
]

_PERSONS = [
    "brad_pitt",
    "angelina_jolie",
    "tom_cruise",
    "nicole_kidman",
    "will_smith",
    "kate_winslet",
    "leonardo_dicaprio",
    "james_cameron",
    "sam_mendes",
    "mel_gibson",
    "helen_hunt",
    "doug_liman",
    "robert_redford",
    "jennifer_aniston",
    "julia_roberts",
    "george_clooney",
    "steven_soderbergh",
    "billy_bob_thornton",
    "jada_pinkett_smith",
    "connie_nielsen",
]

_MOVIES = [
    "mr_and_mrs_smith",
    "interview_with_the_vampire",
    "titanic",
    "revolutionary_road",
    "the_aviator",
    "what_women_want",
    "braveheart",
    "oceans_eleven",
    "oceans_twelve",
    "spy_game",
    "a_river_runs_through_it",
    "the_mexican",
    "ali",
    "vanilla_sky",
    "jerry_maguire",
    "eyes_wide_shut",
    "days_of_thunder",
    "far_and_away",
    "pay_it_forward",
    "cast_away",
    "by_the_sea",
    "the_good_shepherd",
]

_AWARDS = ["academy_award", "golden_globe", "bafta"]

# (movie, person) starring edges.
_STARRING = [
    ("mr_and_mrs_smith", "brad_pitt"),
    ("mr_and_mrs_smith", "angelina_jolie"),
    ("interview_with_the_vampire", "brad_pitt"),
    ("interview_with_the_vampire", "tom_cruise"),
    ("titanic", "kate_winslet"),
    ("titanic", "leonardo_dicaprio"),
    ("revolutionary_road", "kate_winslet"),
    ("revolutionary_road", "leonardo_dicaprio"),
    ("the_aviator", "leonardo_dicaprio"),
    ("what_women_want", "mel_gibson"),
    ("what_women_want", "helen_hunt"),
    ("braveheart", "mel_gibson"),
    ("oceans_eleven", "brad_pitt"),
    ("oceans_eleven", "george_clooney"),
    ("oceans_eleven", "julia_roberts"),
    ("oceans_twelve", "brad_pitt"),
    ("oceans_twelve", "george_clooney"),
    ("oceans_twelve", "julia_roberts"),
    ("spy_game", "brad_pitt"),
    ("spy_game", "robert_redford"),
    ("a_river_runs_through_it", "brad_pitt"),
    ("the_mexican", "brad_pitt"),
    ("the_mexican", "julia_roberts"),
    ("ali", "will_smith"),
    ("ali", "jada_pinkett_smith"),
    ("vanilla_sky", "tom_cruise"),
    ("jerry_maguire", "tom_cruise"),
    ("eyes_wide_shut", "tom_cruise"),
    ("eyes_wide_shut", "nicole_kidman"),
    ("days_of_thunder", "tom_cruise"),
    ("days_of_thunder", "nicole_kidman"),
    ("far_and_away", "tom_cruise"),
    ("far_and_away", "nicole_kidman"),
    ("pay_it_forward", "helen_hunt"),
    ("cast_away", "helen_hunt"),
    ("by_the_sea", "brad_pitt"),
    ("by_the_sea", "angelina_jolie"),
    ("the_good_shepherd", "angelina_jolie"),
]

# (movie, person) director edges.
_DIRECTOR = [
    ("titanic", "james_cameron"),
    ("revolutionary_road", "sam_mendes"),
    ("mr_and_mrs_smith", "doug_liman"),
    ("braveheart", "mel_gibson"),
    ("oceans_eleven", "steven_soderbergh"),
    ("oceans_twelve", "steven_soderbergh"),
    ("a_river_runs_through_it", "robert_redford"),
    ("by_the_sea", "angelina_jolie"),
]

# (movie, person) producer edges.
_PRODUCER = [
    ("by_the_sea", "brad_pitt"),
    ("the_good_shepherd", "robert_redford"),
    ("vanilla_sky", "tom_cruise"),
    ("braveheart", "mel_gibson"),
]

# Undirected person-person edges.
_SPOUSE = [
    ("brad_pitt", "jennifer_aniston"),
    ("tom_cruise", "nicole_kidman"),
    ("will_smith", "jada_pinkett_smith"),
    ("billy_bob_thornton", "angelina_jolie"),
]

_PARTNER = [
    ("brad_pitt", "angelina_jolie"),
]

# (person, award) edges.
_AWARD_WON = [
    ("kate_winslet", "academy_award"),
    ("leonardo_dicaprio", "academy_award"),
    ("tom_cruise", "golden_globe"),
    ("nicole_kidman", "academy_award"),
    ("mel_gibson", "academy_award"),
    ("helen_hunt", "academy_award"),
    ("angelina_jolie", "academy_award"),
    ("will_smith", "golden_globe"),
    ("brad_pitt", "golden_globe"),
    ("james_cameron", "academy_award"),
    ("julia_roberts", "academy_award"),
    ("george_clooney", "academy_award"),
]


def paper_example_kb() -> KnowledgeBase:
    """Construct the Figure 3 style running-example knowledge base.

    Returns:
        A small :class:`KnowledgeBase` (about 45 entities) exercising every
        explanation the paper uses as an example.
    """
    kb = KnowledgeBase(schema=default_entertainment_schema())
    for person in _PERSONS:
        kb.add_entity(person, entity_type="person")
    for movie in _MOVIES:
        kb.add_entity(movie, entity_type="movie")
    for award in _AWARDS:
        kb.add_entity(award, entity_type="award")
    for movie, person in _STARRING:
        kb.add_edge(movie, person, "starring")
    for movie, person in _DIRECTOR:
        kb.add_edge(movie, person, "director")
    for movie, person in _PRODUCER:
        kb.add_edge(movie, person, "producer")
    for left, right in _SPOUSE:
        kb.add_edge(left, right, "spouse")
    for left, right in _PARTNER:
        kb.add_edge(left, right, "partner")
    for person, award in _AWARD_WON:
        kb.add_edge(person, award, "award_won")
    return kb
