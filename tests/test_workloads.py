"""Tests for the synthetic workload generators and the request sampler."""

from __future__ import annotations

import pytest

from repro.errors import KnowledgeBaseError
from repro.workloads import (
    GENERATORS,
    bipartite_kb,
    clustered_kb,
    generate_kb,
    sample_connected_pairs,
    sample_request_stream,
    scale_free_kb,
)


def _edge_keys(kb):
    return [edge.key() for edge in kb.edges()]


class TestScaleFree:
    def test_shape_and_size(self):
        kb = scale_free_kb(num_entities=300, attach_per_entity=3, seed=5)
        assert kb.num_entities == 300
        # ~ (300 - 4) * 3 minus dedup collisions
        assert 700 <= kb.num_edges <= 296 * 3
        assert len(kb.relation_labels()) > 1

    def test_deterministic_per_seed(self):
        first = scale_free_kb(num_entities=200, seed=9)
        second = scale_free_kb(num_entities=200, seed=9)
        assert list(first.entities) == list(second.entities)
        assert _edge_keys(first) == _edge_keys(second)

    def test_different_seeds_differ(self):
        first = scale_free_kb(num_entities=200, seed=1)
        second = scale_free_kb(num_entities=200, seed=2)
        assert _edge_keys(first) != _edge_keys(second)

    def test_heavy_tail(self):
        """Preferential attachment must concentrate degree on hubs."""
        kb = scale_free_kb(num_entities=500, attach_per_entity=2, seed=3)
        degrees = sorted((kb.degree(entity) for entity in kb.entities), reverse=True)
        top_share = sum(degrees[:25]) / sum(degrees)
        assert top_share > 0.15, f"no hubs: top-5% share {top_share:.3f}"

    def test_undirected_labels_declared(self):
        kb = scale_free_kb(num_entities=100, num_labels=4, undirected_labels=2, seed=0)
        directed_flags = [kb.schema.is_directed(f"rel{i}") for i in range(4)]
        assert directed_flags == [True, True, False, False]

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            scale_free_kb(num_entities=3, attach_per_entity=3)
        with pytest.raises(ValueError):
            scale_free_kb(num_entities=100, attach_per_entity=0)
        with pytest.raises(ValueError):
            scale_free_kb(num_entities=100, num_labels=2, undirected_labels=3)


class TestBipartite:
    def test_structure(self):
        kb = bipartite_kb(num_entities=150, num_attributes=20, seed=4)
        entities = [e for e in kb.entities if kb.entity_type(e) == "entity"]
        attributes = [e for e in kb.entities if kb.entity_type(e) == "attribute"]
        assert len(entities) == 150 and len(attributes) == 20
        # strictly bipartite: every edge goes entity -> attribute
        for edge in kb.edges():
            assert kb.entity_type(edge.source) == "entity"
            assert kb.entity_type(edge.target) == "attribute"
            assert edge.directed

    def test_popularity_skew(self):
        kb = bipartite_kb(num_entities=300, num_attributes=30, seed=8)
        degrees = {e: kb.degree(e) for e in kb.entities if kb.entity_type(e) == "attribute"}
        assert degrees["a00"] > degrees[max(degrees)]  # a00 is the most popular

    def test_deterministic(self):
        assert _edge_keys(bipartite_kb(seed=2)) == _edge_keys(bipartite_kb(seed=2))


class TestClustered:
    def test_structure(self):
        kb = clustered_kb(num_communities=5, community_size=30, inter_edges=40, seed=6)
        assert kb.num_entities == 150
        intra = inter = 0
        for edge in kb.edges():
            if edge.source[:3] == edge.target[:3]:
                intra += 1
            else:
                inter += 1
        assert intra > inter
        assert inter > 0

    def test_deterministic(self):
        assert _edge_keys(clustered_kb(seed=1)) == _edge_keys(clustered_kb(seed=1))


class TestRegistry:
    def test_generate_by_name(self):
        kb = generate_kb("clustered", num_communities=2, community_size=20, seed=0)
        assert kb.num_entities == 40
        assert set(GENERATORS) == {"scale-free", "bipartite", "clustered"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown workload generator"):
            generate_kb("ring")


class TestPairSampling:
    def test_pairs_are_connected_and_distinct(self):
        kb = scale_free_kb(num_entities=300, seed=7)
        pairs = sample_connected_pairs(kb, 20, seed=1)
        assert len(pairs) == len(set(frozenset(p) for p in pairs)) == 20
        for v_start, v_end in pairs:
            assert any(entry.neighbor == v_end for entry in kb.iter_neighbors(v_start))

    def test_hub_bias_raises_mean_degree(self):
        kb = scale_free_kb(num_entities=500, attach_per_entity=2, seed=7)

        def mean_degree(pairs):
            degrees = [kb.degree(a) + kb.degree(b) for a, b in pairs]
            return sum(degrees) / len(degrees)

        uniform = mean_degree(sample_connected_pairs(kb, 30, seed=2, hub_bias=0))
        biased = mean_degree(sample_connected_pairs(kb, 30, seed=2, hub_bias=6))
        assert biased > uniform

    def test_empty_kb_rejected(self):
        from repro.kb.graph import KnowledgeBase

        with pytest.raises(KnowledgeBaseError):
            sample_connected_pairs(KnowledgeBase(), 1)


class TestRequestStream:
    def test_shape_and_determinism(self):
        kb = scale_free_kb(num_entities=300, seed=7)
        stream = sample_request_stream(
            kb, 25, seed=11, unique_pairs=10, size_limit=4, k_choices=(2, 4)
        )
        assert len(stream) == 25
        for request in stream:
            assert kb.has_entity(request["start"]) and kb.has_entity(request["end"])
            assert request["k"] in (2, 4)
            assert request["size_limit"] == 4
            assert request["measure"] == "size+monocount"
        again = sample_request_stream(
            kb, 25, seed=11, unique_pairs=10, size_limit=4, k_choices=(2, 4)
        )
        assert stream == again
        distinct = {(r["start"], r["end"]) for r in stream}
        assert len(distinct) == 10  # every unique pair appears at least once

    def test_rejects_bad_knobs(self):
        kb = scale_free_kb(num_entities=100, seed=0)
        with pytest.raises(ValueError):
            sample_request_stream(kb, 0)
        with pytest.raises(ValueError):
            sample_request_stream(kb, 5, unique_pairs=9)
        with pytest.raises(ValueError):
            sample_request_stream(kb, 5, measures=())
