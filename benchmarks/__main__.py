"""Command-line entry point for the benchmark harness.

``python -m benchmarks`` (run from the repository root) executes the figure
benchmarks with the recording hooks of ``benchmarks/conftest.py`` enabled and
writes a machine-readable summary (default: ``BENCH_pr1.json``).  A committed
summary doubles as the regression reference for CI:

    python -m benchmarks --output fresh.json          # record a run
    python -m benchmarks --check BENCH_pr1.json --output fresh.json
                                                      # fail on >2x regression
    python -m benchmarks --smoke ...                  # laptop/CI-sized knobs

``--baseline old.json`` additionally folds per-benchmark speedups against a
previous record into the output, which is how ``BENCH_pr1.json`` documents
the indexed-adjacency speedups in-repo.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The serving-layer benchmark (PR 2, records into BENCH_pr2.json).
SERVICE_SELECTION = ["benchmarks/bench_service_throughput.py"]
#: The scale-out batch benchmark (PR 3, records into BENCH_pr3.json).
PARALLEL_SELECTION = ["benchmarks/bench_parallel.py"]
#: The compiled array-backed core benchmark (PR 4, records into BENCH_pr4.json).
COMPILED_SELECTION = ["benchmarks/bench_compiled.py"]
#: The durable-tier cold-boot benchmark (PR 6, records into BENCH_pr6.json).
DURABILITY_SELECTION = ["benchmarks/bench_durability.py"]
#: The observability overhead benchmark (PR 7, records into BENCH_pr7.json).
OBS_SELECTION = ["benchmarks/bench_obs.py"]
#: The delta-overlay mixed read/write benchmark (PR 8, BENCH_pr8.json).
DELTA_SELECTION = ["benchmarks/bench_delta.py"]
#: The request-lifecycle resilience benchmark (PR 9, BENCH_pr9.json).
RESILIENCE_SELECTION = ["benchmarks/bench_resilience.py"]
#: The replica-fleet gray-failure benchmark (PR 10, BENCH_pr10.json).
FLEET_SELECTION = ["benchmarks/bench_fleet.py"]
#: The default selection: every figure/table benchmark in this directory,
#: listed explicitly — ``bench_*.py`` does not match pytest's default
#: ``test_*.py`` collection pattern, so a bare directory argument collects
#: nothing.  The serving-layer and parallel-batch benchmarks are excluded:
#: they record into their own files (run them with ``--service-only`` /
#: ``--parallel-only``), and folding them into a figure run would pollute
#: BENCH_pr1.json and subject the run to their own assertions.
_SUBSYSTEM_FILES = {
    Path(entry).name
    for entry in (
        SERVICE_SELECTION
        + PARALLEL_SELECTION
        + COMPILED_SELECTION
        + DURABILITY_SELECTION
        + OBS_SELECTION
        + DELTA_SELECTION
        + RESILIENCE_SELECTION
        + FLEET_SELECTION
    )
}
DEFAULT_SELECTION = sorted(
    path.relative_to(REPO_ROOT).as_posix()
    for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    if path.name not in _SUBSYSTEM_FILES
)
#: The benchmarks the PR-1 performance work targets (and CI gates on).
CORE_SELECTION = [
    "benchmarks/bench_fig7_enumeration.py",
    "benchmarks/bench_fig11_distributional.py",
]


def _measured_time(record: dict) -> float | None:
    # Same statistic preference as benchmarks/conftest.py:_measured_time so
    # the CI gate judges the exact numbers the committed speedups are built
    # from: best round (steady state) first, then mean, then wall time.
    value = record.get(
        "benchmark_min_s", record.get("benchmark_mean_s", record.get("wall_time_s"))
    )
    return float(value) if value is not None else None


def check_regressions(
    reference_path: str, fresh_path: str, factor: float, noise_floor_s: float = 0.005
) -> int:
    """Compare a fresh record against the committed reference.

    Returns the number of regressions: benchmarks slower than ``factor`` times
    the reference.  Benchmarks faster than ``noise_floor_s`` in the reference
    are skipped (timer noise dominates there), as are nodeids missing from
    either file.  Hardware differences between the reference machine and CI
    are expected to stay well inside the 2x default factor.
    """
    with open(reference_path) as handle:
        reference = json.load(handle).get("benchmarks", {})
    with open(fresh_path) as handle:
        fresh = json.load(handle).get("benchmarks", {})
    regressions = 0
    compared = 0
    for nodeid, reference_record in sorted(reference.items()):
        fresh_record = fresh.get(nodeid)
        if fresh_record is None:
            continue
        reference_time = _measured_time(reference_record)
        fresh_time = _measured_time(fresh_record)
        if not reference_time or not fresh_time or reference_time < noise_floor_s:
            continue
        compared += 1
        ratio = fresh_time / reference_time
        if ratio > factor:
            regressions += 1
            print(
                f"REGRESSION {nodeid}: {fresh_time:.4f}s vs "
                f"reference {reference_time:.4f}s ({ratio:.2f}x > {factor}x)"
            )
    print(f"regression check: {compared} benchmarks compared, {regressions} regressed")
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks", description=__doc__)
    parser.add_argument(
        "--output",
        default=os.environ.get("REX_BENCH_JSON", "BENCH_pr1.json"),
        help="path the JSON record is written to (default: BENCH_pr1.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="older record to compute per-benchmark speedups against",
    )
    parser.add_argument(
        "--check",
        default=None,
        help="committed record to check for >FACTOR regressions (exit 1 on any)",
    )
    parser.add_argument(
        "--check-factor",
        type=float,
        default=float(os.environ.get("REX_BENCH_CHECK_FACTOR", "2.0")),
        help="regression factor for --check (default 2.0)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small env knobs (1 pair per bucket, 5 global samples) for CI",
    )
    subset = parser.add_mutually_exclusive_group()
    subset.add_argument(
        "--core-only",
        action="store_true",
        help="run only the fig7/fig11 benchmarks the perf work targets",
    )
    subset.add_argument(
        "--service-only",
        action="store_true",
        help="run only the serving-layer throughput benchmark (BENCH_pr2.json)",
    )
    subset.add_argument(
        "--parallel-only",
        action="store_true",
        help="run only the scale-out batch benchmark (BENCH_pr3.json)",
    )
    subset.add_argument(
        "--compiled-only",
        action="store_true",
        help="run only the compiled-core benchmark (BENCH_pr4.json)",
    )
    subset.add_argument(
        "--durability-only",
        action="store_true",
        help="run only the durable-tier cold-boot benchmark (BENCH_pr6.json)",
    )
    subset.add_argument(
        "--obs-only",
        action="store_true",
        help="run only the observability overhead benchmark (BENCH_pr7.json)",
    )
    subset.add_argument(
        "--delta-only",
        action="store_true",
        help="run only the delta-overlay mixed read/write benchmark (BENCH_pr8.json)",
    )
    subset.add_argument(
        "--resilience-only",
        action="store_true",
        help="run only the request-lifecycle resilience benchmark (BENCH_pr9.json)",
    )
    subset.add_argument(
        "--fleet-only",
        action="store_true",
        help="run only the replica-fleet gray-failure benchmark (BENCH_pr10.json)",
    )
    parser.add_argument(
        "selection",
        nargs="*",
        help="explicit pytest selection (defaults to the whole benchmarks dir)",
    )
    args = parser.parse_args(argv)

    os.chdir(REPO_ROOT)
    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    os.environ["PYTHONPATH"] = os.pathsep.join(
        filter(None, [src, os.environ.get("PYTHONPATH")])
    )
    os.environ["REX_BENCH_JSON"] = args.output
    if args.baseline:
        os.environ["REX_BENCH_BASELINE"] = args.baseline
    if args.smoke:
        os.environ.setdefault("REX_BENCH_PAIRS_PER_BUCKET", "1")
        os.environ.setdefault("REX_BENCH_GLOBAL_SAMPLES", "5")

    import pytest

    if args.selection:
        selection = args.selection
    elif args.core_only:
        selection = CORE_SELECTION
    elif args.service_only:
        selection = SERVICE_SELECTION
    elif args.parallel_only:
        selection = PARALLEL_SELECTION
    elif args.compiled_only:
        selection = COMPILED_SELECTION
    elif args.durability_only:
        selection = DURABILITY_SELECTION
    elif args.obs_only:
        selection = OBS_SELECTION
    elif args.delta_only:
        selection = DELTA_SELECTION
    elif args.resilience_only:
        selection = RESILIENCE_SELECTION
    elif args.fleet_only:
        selection = FLEET_SELECTION
    else:
        selection = DEFAULT_SELECTION
    exit_code = pytest.main(["-q", "--benchmark-disable-gc", *selection])
    if exit_code != 0:
        return int(exit_code)
    print(f"benchmark record written to {args.output}")
    if args.check:
        if check_regressions(args.check, args.output, args.check_factor):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
