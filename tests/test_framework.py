"""Tests for the general enumeration framework (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.matcher import match_pattern
from repro.core.properties import is_minimal
from repro.enumeration.framework import (
    DEFAULT_SIZE_LIMIT,
    enumerate_explanations,
)
from repro.errors import EnumerationError


class TestValidation:
    def test_default_size_limit_matches_paper(self):
        assert DEFAULT_SIZE_LIMIT == 5

    def test_rejects_small_size_limit(self, paper_kb):
        with pytest.raises(EnumerationError):
            enumerate_explanations(paper_kb, "brad_pitt", "angelina_jolie", size_limit=1)

    def test_rejects_unknown_path_algorithm(self, paper_kb):
        with pytest.raises(EnumerationError):
            enumerate_explanations(
                paper_kb, "brad_pitt", "angelina_jolie", path_algorithm="bogus"
            )

    def test_rejects_unknown_union_algorithm(self, paper_kb):
        with pytest.raises(EnumerationError):
            enumerate_explanations(
                paper_kb, "brad_pitt", "angelina_jolie", union_algorithm="bogus"
            )


class TestResults:
    def test_paper_examples_are_found(self, paper_kb, brad_angelina_explanations):
        labels = [
            tuple(sorted(edge.label for edge in explanation.pattern.edges))
            for explanation in brad_angelina_explanations
        ]
        # The partner edge (Figure 4(a) analogue) and co-starring (Figure 4(b)).
        assert ("partner",) in labels
        assert ("starring", "starring") in labels

    def test_every_result_is_minimal_with_instances(self, brad_angelina_explanations):
        for explanation in brad_angelina_explanations:
            assert is_minimal(explanation.pattern)
            assert explanation.num_instances > 0

    def test_results_respect_size_limit(self, paper_kb):
        result = enumerate_explanations(paper_kb, "brad_pitt", "angelina_jolie", size_limit=3)
        assert all(e.pattern.num_nodes <= 3 for e in result.explanations)

    def test_larger_size_limit_is_a_superset(self, paper_kb):
        small = enumerate_explanations(paper_kb, "brad_pitt", "angelina_jolie", size_limit=3)
        large = enumerate_explanations(paper_kb, "brad_pitt", "angelina_jolie", size_limit=5)
        small_keys = {e.pattern.canonical_key for e in small.explanations}
        large_keys = {e.pattern.canonical_key for e in large.explanations}
        assert small_keys <= large_keys
        assert len(large_keys) > len(small_keys)

    def test_instances_match_direct_evaluation(self, paper_kb, winslet_dicaprio_explanations):
        for explanation in winslet_dicaprio_explanations:
            direct = set(
                match_pattern(
                    paper_kb, explanation.pattern, "kate_winslet", "leonardo_dicaprio"
                )
            )
            assert set(explanation.instances) == direct

    def test_disconnected_pair(self, paper_kb):
        # connie_nielsen is an isolated entity in the running-example KB.
        result = enumerate_explanations(paper_kb, "brad_pitt", "connie_nielsen", size_limit=4)
        assert result.num_explanations == 0
        assert result.num_instances == 0

    def test_result_metadata(self, paper_kb):
        result = enumerate_explanations(paper_kb, "tom_cruise", "nicole_kidman", size_limit=4)
        assert result.v_start == "tom_cruise"
        assert result.v_end == "nicole_kidman"
        assert result.size_limit == 4
        assert result.path_algorithm == "prioritized"
        assert result.union_algorithm == "prune"
        assert result.path_stats["paths"] >= 1
        assert result.union_stats["merge_calls"] >= 0

    def test_paths_plus_non_paths_partition_results(self, winslet_dicaprio_explanations, paper_kb):
        result = enumerate_explanations(
            paper_kb, "kate_winslet", "leonardo_dicaprio", size_limit=5
        )
        assert len(result.paths()) + len(result.non_paths()) == result.num_explanations
        assert all(e.is_path() for e in result.paths())
        assert all(not e.is_path() for e in result.non_paths())

    def test_num_instances_is_total_over_explanations(self, paper_kb):
        result = enumerate_explanations(paper_kb, "brad_pitt", "tom_cruise", size_limit=4)
        assert result.num_instances == sum(e.num_instances for e in result.explanations)


class TestAlgorithmCombinations:
    @pytest.mark.parametrize("path_algorithm", ["naive", "basic", "prioritized"])
    @pytest.mark.parametrize("union_algorithm", ["basic", "prune"])
    def test_every_combination_agrees(self, paper_kb, path_algorithm, union_algorithm):
        reference = enumerate_explanations(
            paper_kb, "brad_pitt", "angelina_jolie", size_limit=4
        )
        candidate = enumerate_explanations(
            paper_kb,
            "brad_pitt",
            "angelina_jolie",
            size_limit=4,
            path_algorithm=path_algorithm,
            union_algorithm=union_algorithm,
        )
        assert sorted(e.pattern.canonical_key for e in reference.explanations) == sorted(
            e.pattern.canonical_key for e in candidate.explanations
        )

    def test_agreement_on_synthetic_kb(self, tiny_synthetic_kb):
        persons = tiny_synthetic_kb.entities_of_type("person")
        pair = (persons[1], persons[2])
        results = [
            enumerate_explanations(
                tiny_synthetic_kb,
                *pair,
                size_limit=4,
                path_algorithm=path_algorithm,
                union_algorithm=union_algorithm,
            )
            for path_algorithm in ("naive", "basic", "prioritized")
            for union_algorithm in ("basic", "prune")
        ]
        signatures = [
            sorted(e.pattern.canonical_key for e in result.explanations)
            for result in results
        ]
        assert all(signature == signatures[0] for signature in signatures)
