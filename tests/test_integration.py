"""End-to-end integration tests over the paper's running example and pairs."""

from __future__ import annotations

import pytest

from repro import Rex
from repro.datasets.paper_example import PAPER_PAIRS
from repro.enumeration.framework import enumerate_explanations
from repro.evaluation.user_study import (
    RelevanceOracle,
    SimulatedJudgePool,
    evaluate_measures_for_pair,
)
from repro.measures import default_measures
from repro.measures.aggregate import MonocountMeasure
from repro.ranking.distributional_pruning import rank_by_local_position
from repro.ranking.topk import rank_topk_anti_monotonic


class TestPaperNarrativeExamples:
    def test_tom_cruise_nicole_kidman_top_explanation_is_marriage_or_costar(self, paper_kb):
        rex = Rex(paper_kb, size_limit=4)
        top = rex.explain("tom_cruise", "nicole_kidman", measure="size+monocount", k=1)
        labels = top[0].explanation.pattern.labels()
        assert labels == {"spouse"}

    def test_brad_pitt_tom_cruise_costarred_in_interview_with_the_vampire(self, paper_kb):
        rex = Rex(paper_kb, size_limit=4)
        top = rex.explain("brad_pitt", "tom_cruise", measure="size+monocount", k=3)
        costar = next(
            entry
            for entry in top
            if entry.explanation.pattern.labels() == {"starring"}
        )
        movies = {
            instance["?v0"]
            for instance in costar.explanation.instances
        }
        assert movies == {"interview_with_the_vampire"}

    def test_every_paper_pair_has_explanations(self, paper_kb):
        for v_start, v_end in PAPER_PAIRS:
            result = enumerate_explanations(paper_kb, v_start, v_end, size_limit=5)
            assert result.num_explanations > 0, (v_start, v_end)

    def test_non_path_explanations_exist_for_rich_pairs(self, paper_kb):
        result = enumerate_explanations(
            paper_kb, "kate_winslet", "leonardo_dicaprio", size_limit=5
        )
        assert result.non_paths(), "expected non-path explanations (Section 5.4.2)"


class TestEndToEndPipelines:
    def test_full_ranking_pipeline_with_all_measures(self, paper_kb):
        explanations = enumerate_explanations(
            paper_kb, "brad_pitt", "angelina_jolie", size_limit=4
        ).explanations
        judges = SimulatedJudgePool(RelevanceOracle(paper_kb))
        scores = evaluate_measures_for_pair(
            paper_kb,
            explanations,
            default_measures(),
            "brad_pitt",
            "angelina_jolie",
            judges,
            k=5,
        )
        assert set(scores) == set(default_measures())

    def test_pruned_topk_pipeline(self, paper_kb):
        result = rank_topk_anti_monotonic(
            paper_kb, "kate_winslet", "leonardo_dicaprio", MonocountMeasure(), k=5
        )
        assert 1 <= len(result) <= 5

    def test_distributional_pipeline(self, paper_kb, brad_angelina_explanations):
        result = rank_by_local_position(
            paper_kb, brad_angelina_explanations, "brad_pitt", "angelina_jolie", k=5
        )
        assert len(result) >= 1
        # The partner relationship is unique to the pair, so it reaches the top.
        top_labels = result.ranked[0].explanation.pattern.labels()
        assert "partner" in top_labels or result.ranked[0].value == 0.0

    def test_synthetic_kb_end_to_end(self, tiny_synthetic_kb):
        persons = tiny_synthetic_kb.entities_of_type("person")
        rex = Rex(tiny_synthetic_kb, size_limit=4)
        explained_any = False
        for v_end in persons[1:6]:
            ranked = rex.explain(persons[0], v_end, measure="size+monocount", k=3)
            if ranked:
                explained_any = True
                for entry in ranked:
                    assert entry.explanation.num_instances > 0
        assert explained_any
