"""Evaluation harness: pair sampling, simulated user study, path statistics."""

from repro.evaluation.pairs import (
    CONNECTEDNESS_BUCKETS,
    EntityPair,
    bucket_for,
    connectedness,
    sample_pairs_by_connectedness,
)
from repro.evaluation.path_vs_nonpath import (
    PathShare,
    aggregate_path_share,
    path_share_among_top,
)
from repro.evaluation.user_study import (
    JudgedExplanation,
    MeasureEffectiveness,
    RelevanceOracle,
    SimulatedJudgePool,
    dcg_score,
    evaluate_measures_for_pair,
)

__all__ = [
    "CONNECTEDNESS_BUCKETS",
    "EntityPair",
    "bucket_for",
    "connectedness",
    "sample_pairs_by_connectedness",
    "PathShare",
    "aggregate_path_share",
    "path_share_among_top",
    "JudgedExplanation",
    "MeasureEffectiveness",
    "RelevanceOracle",
    "SimulatedJudgePool",
    "dcg_score",
    "evaluate_measures_for_pair",
]
