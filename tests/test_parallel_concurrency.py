"""Concurrency hammer: parallel batches racing live KB updates.

The satellite scenario of the scale-out PR: ``explain_batch`` with
``parallelism > 1`` is hammered from several threads while KB edge updates
land mid-batch (engine-level and over ``POST /kb/edges``).  The assertions
pin the serving guarantees:

* every served outcome is labelled with a KB version that actually existed
  at a write boundary — never a torn/intermediate version;
* an outcome's content equals a from-scratch sequential computation against
  a snapshot of the KB at exactly that version (no stale result is ever
  served under a fresh version label, and vice versa);
* after the dust settles the result cache holds only current-version
  entries — mid-batch races cannot resurrect purged versions;
* worker pools recycle cleanly on version change and keep answering.
"""

from __future__ import annotations

import json
import random
import threading
import urllib.request

import pytest

from repro import Rex
from repro.errors import RexError
from repro.service import ExplanationEngine, create_server, run_in_thread
from repro.service.serialize import outcome_to_dict, ranked_to_dict
from repro.workloads import clustered_kb, sample_request_stream

SIZE_LIMIT = 4
HAMMER_THREADS = 3
BATCHES_PER_THREAD = 5
UPDATES = 4


def _fresh_kb(seed=29):
    return clustered_kb(
        num_communities=4, community_size=22, inter_edges=25, seed=seed
    )


def _render_outcome(outcome) -> str:
    payload = outcome_to_dict(outcome)
    for volatile in ("elapsed_s", "cached", "coalesced"):
        payload.pop(volatile)
    return json.dumps(payload, sort_keys=True)


class TestEngineHammer:
    def test_updates_mid_batch_never_serve_torn_results(self):
        kb = _fresh_kb()
        engine = ExplanationEngine(kb, size_limit=SIZE_LIMIT, parallelism=2)
        requests = sample_request_stream(
            kb, 8, seed=5, unique_pairs=8, size_limit=SIZE_LIMIT, k_choices=(3,)
        )
        # version -> deep KB copy taken at that write boundary (the updater
        # thread is the only writer, so the copies are race-free)
        snapshots = {kb.version: kb.copy()}
        boundary_versions = {kb.version}
        collected: list = []
        failures: list[BaseException] = []
        stop = threading.Event()
        lock = threading.Lock()

        anchors = [requests[i]["start"] for i in range(4)]

        def updater():
            try:
                rng = random.Random(99)
                for update in range(UPDATES):
                    # connect a brand-new entity AND rewire two existing pair
                    # endpoints, so stale replicas would rank differently
                    edges = [
                        {
                            "source": f"upd_{update}",
                            "target": anchors[update % len(anchors)],
                            "label": "rel0",
                        },
                        {
                            "source": requests[rng.randrange(len(requests))]["start"],
                            "target": requests[rng.randrange(len(requests))]["end"],
                            "label": f"rel{rng.randrange(4)}",
                        },
                    ]
                    try:
                        engine.add_edges(edges)
                    except RexError:
                        # the random rewire can pick source == target
                        engine.add_edges(edges[:1])
                    with lock:
                        snapshots[kb.version] = kb.copy()
                        boundary_versions.add(kb.version)
                    stop.wait(0.01)
            except BaseException as error:  # pragma: no cover - failure path
                failures.append(error)

        def hammer():
            try:
                for _ in range(BATCHES_PER_THREAD):
                    batch = engine.explain_batch(requests)
                    with lock:
                        collected.extend(batch)
            except BaseException as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=updater)]
        threads += [threading.Thread(target=hammer) for _ in range(HAMMER_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "hammer deadlocked"
        try:
            assert not failures, failures

            # 1. nothing errored: the stale-replica retry path absorbs every
            #    mid-batch race for entities that existed up front
            errors = [item for item in collected if isinstance(item, RexError)]
            assert not errors, [str(e) for e in errors]

            # 2. only write-boundary versions are ever served
            served_versions = {outcome.kb_version for outcome in collected}
            assert served_versions <= boundary_versions

            # 3. served content is byte-identical to a sequential recompute
            #    against the snapshot of exactly that version
            spot_checked = set()
            for outcome in collected:
                identity = (
                    outcome.kb_version,
                    outcome.v_start,
                    outcome.v_end,
                    outcome.measure,
                    outcome.k,
                    outcome.size_limit,
                )
                if identity in spot_checked:
                    continue
                spot_checked.add(identity)
                reference_kb = snapshots[outcome.kb_version]
                reference = tuple(
                    Rex(reference_kb, size_limit=SIZE_LIMIT).explain(
                        outcome.v_start,
                        outcome.v_end,
                        measure=outcome.measure,
                        k=outcome.k,
                        size_limit=outcome.size_limit,
                    )
                )
                assert [
                    ranked_to_dict(entry, rank)
                    for rank, entry in enumerate(outcome.ranked, start=1)
                ] == [
                    ranked_to_dict(entry, rank)
                    for rank, entry in enumerate(reference, start=1)
                ], f"stale/torn result served for {identity}"

            # 4. one more update + batch: workers recycle and answer current
            final_anchor = anchors[0]
            engine.add_edges(
                [{"source": "post_hammer", "target": final_anchor, "label": "rel1"}]
            )
            final_batch = engine.explain_batch(requests)
            assert all(
                outcome.kb_version == engine.kb_version for outcome in final_batch
            )
            executor = engine.executor
            assert executor is not None
            assert executor.stats.recycles >= 1
            assert executor.stats.worker_crashes == 0

            # 5. the cache holds nothing from purged versions
            for version, _key in engine.cache.keys():
                assert version == engine.kb_version
        finally:
            engine.close()


class TestHttpHammer:
    @pytest.fixture()
    def service(self):
        kb = _fresh_kb(seed=31)
        engine = ExplanationEngine(kb, size_limit=SIZE_LIMIT, parallelism=2)
        server = create_server(engine, port=0)
        run_in_thread(server)
        try:
            yield engine, server.url, kb
        finally:
            server.shutdown()
            server.server_close()

    @staticmethod
    def _post(url: str, payload: dict) -> tuple[int, dict]:
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url, data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)

    def test_kb_edges_landing_mid_batch(self, service):
        engine, url, kb = service
        requests = sample_request_stream(
            kb, 6, seed=9, size_limit=SIZE_LIMIT, k_choices=(3,)
        )
        results: list[dict] = []
        failures: list[BaseException] = []
        lock = threading.Lock()

        def hammer():
            try:
                for _ in range(4):
                    status, payload = self._post(
                        url + "/explain/batch", {"requests": requests}
                    )
                    assert status == 200
                    assert payload["num_answered"] == len(requests)
                    with lock:
                        results.extend(payload["results"])
            except BaseException as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        anchor = requests[0]["start"]
        for update in range(3):
            status, payload = self._post(
                url + "/kb/edges",
                {
                    "edges": [
                        {
                            "source": f"http_upd_{update}",
                            "target": anchor,
                            "label": "rel0",
                        }
                    ]
                },
            )
            assert status == 200 and payload["added"] == 1
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "HTTP hammer deadlocked"
        assert not failures, failures

        final_version = engine.kb_version
        assert all(item["kb_version"] <= final_version for item in results)
        # a fresh batch after the last update is answered at the new version
        status, payload = self._post(url + "/explain/batch", {"requests": requests})
        assert status == 200
        assert {item["kb_version"] for item in payload["results"]} == {final_version}
        stats = engine.stats()
        assert stats["parallel"]["batches"] >= 1
        assert stats["parallel"]["worker_crashes"] == 0
