"""Pattern-to-SQL compilation and conjunctive evaluation over the edge relation.

Section 5.3.2 computes the local distributional position of an explanation by
translating its pattern into a self-join SQL query over the edge relation
``R(eid1, eid2, rel)``, grouping by the end entity and counting, with a
``HAVING count > c`` filter and a ``LIMIT`` clause for pruning.  This module
provides:

* :func:`compile_pattern_sql` — render exactly that SQL text for a pattern
  (useful for documentation, the CLI and tests of the compilation rules);
* :func:`pattern_bindings` — evaluate the conjunctive query directly against
  the knowledge base with some variables fixed (the start entity, optionally
  the end entity), returning all variable bindings;
* :func:`local_count_distribution` — the grouped counts per end entity that
  the SQL query would return, with optional ``HAVING``/``LIMIT`` pruning;
* :func:`sweep_local_count_distributions` — the **batched evaluator**: the
  pattern is compiled once (edge order, slot assignment) and a single frontier
  expansion over the knowledge base's ``(label, orientation)`` indexes sweeps
  every requested start entity, grouping counts by ``(start, end)``.  The
  distributional measures of Section 4.3 use it to turn their
  O(pairs × match) loops into one shared traversal.

The evaluation deliberately mirrors instance semantics (Definition 2):
bindings are injective and non-target variables avoid the target entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Mapping, Sequence

from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.errors import RelationalError
from repro.kb.graph import KnowledgeBase

__all__ = [
    "CompiledSQL",
    "compile_pattern_sql",
    "pattern_bindings",
    "iter_pattern_bindings",
    "local_count_distribution",
    "SweepResult",
    "sweep_local_count_distributions",
    "count_qualifying_end_entities",
]


@dataclass(frozen=True)
class CompiledSQL:
    """The SQL rendering of an explanation pattern's local-distribution query."""

    text: str
    table_aliases: tuple[str, ...]
    group_by: tuple[str, ...]


def _alias_column(alias: str, column: str) -> str:
    return f"{alias}.{column}"


def compile_pattern_sql(
    pattern: ExplanationPattern,
    v_start: str,
    count_threshold: int,
    limit: int | None = None,
    relation_name: str = "R",
) -> CompiledSQL:
    """Render the Section 5.3.2 SQL query for ``pattern``.

    Each pattern edge becomes one aliased copy of the edge relation; shared
    variables become equality predicates between the corresponding columns;
    the query groups by the end-variable column and keeps groups whose count
    exceeds ``count_threshold``.

    Example (co-starring pattern)::

        SELECT v_start, R2.eid1, count(*) AS count
        FROM R AS R1, R AS R2
        WHERE ...
        GROUP BY v_start, R2.eid1
        HAVING count > c
    """
    edges = sorted(pattern.edges, key=lambda edge: edge.key())
    if not edges:
        raise RelationalError("cannot compile a pattern without edges to SQL")
    aliases = [f"{relation_name}{index + 1}" for index in range(len(edges))]

    # Each variable is represented by the first (alias, column) that binds it.
    variable_column: dict[str, str] = {}
    predicates: list[str] = []
    for alias, edge in zip(aliases, edges):
        predicates.append(f"{alias}.rel = '{edge.label}'")
        for column, variable in (("eid1", edge.source), ("eid2", edge.target)):
            reference = _alias_column(alias, column)
            if variable in variable_column:
                predicates.append(f"{variable_column[variable]} = {reference}")
            else:
                variable_column[variable] = reference
    predicates.append(f"{variable_column[START]} = '{v_start}'")

    end_column = variable_column.get(END)
    if end_column is None:
        raise RelationalError("the pattern does not constrain the end variable")

    from_clause = ", ".join(f"{relation_name} AS {alias}" for alias in aliases)
    where_clause = "\n  AND ".join(predicates)
    limit_clause = f"\nLIMIT {limit}" if limit is not None else ""
    text = (
        f"SELECT {variable_column[START]} AS v_start, {end_column} AS v_end, count(*) AS count\n"
        f"FROM {from_clause}\n"
        f"WHERE {where_clause}\n"
        f"GROUP BY {variable_column[START]}, {end_column}\n"
        f"HAVING count > {count_threshold}{limit_clause}"
    )
    return CompiledSQL(
        text=text,
        table_aliases=tuple(aliases),
        group_by=(variable_column[START], end_column),
    )


# ---------------------------------------------------------------------------
# Conjunctive evaluation
# ---------------------------------------------------------------------------


def _edge_order(pattern: ExplanationPattern, fixed: Mapping[str, str]) -> list[PatternEdge]:
    """Order edges so each has at least one endpoint bound when reached."""
    bound = set(fixed)
    remaining = sorted(pattern.edges, key=lambda edge: edge.key())
    ordered: list[PatternEdge] = []
    while remaining:
        for index, edge in enumerate(remaining):
            if edge.source in bound or edge.target in bound:
                ordered.append(edge)
                bound.add(edge.source)
                bound.add(edge.target)
                remaining.pop(index)
                break
        else:
            raise RelationalError(
                "pattern is not connected to the fixed variables; cannot evaluate"
            )
    return ordered


def iter_pattern_bindings(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    fixed: Mapping[str, str],
    injective: bool = True,
) -> Iterator[dict[str, str]]:
    """Yield all variable bindings of ``pattern`` extending ``fixed``.

    Args:
        kb: the knowledge base.
        pattern: the explanation pattern (the conjunctive query).
        fixed: variables with predetermined entities; must include the start
            variable (the end variable may be free, which is how local
            distributions vary the end entity).
        injective: enforce subgraph semantics (distinct variables map to
            distinct entities).  Matches Definition 2.
    """
    if START not in fixed:
        raise RelationalError("the start variable must be fixed")
    for variable, entity in fixed.items():
        if variable not in pattern.variables:
            raise RelationalError(f"fixed variable {variable!r} not in pattern")
        if not kb.has_entity(entity):
            return

    order = _edge_order(pattern, fixed)
    binding: dict[str, str] = dict(fixed)
    bound_entities = set(binding.values())

    def recurse(index: int) -> Iterator[dict[str, str]]:
        if index == len(order):
            yield dict(binding)
            return
        edge = order[index]
        source_entity = binding.get(edge.source)
        target_entity = binding.get(edge.target)
        if source_entity is not None and target_entity is not None:
            direction = "out" if edge.directed else "any"
            if kb.has_edge(source_entity, target_entity, edge.label, direction):
                yield from recurse(index + 1)
            return
        if source_entity is not None:
            anchor, free_variable = source_entity, edge.target
            orientation = "out" if edge.directed else "undirected"
        else:
            anchor, free_variable = target_entity, edge.source
            orientation = "in" if edge.directed else "undirected"
        for candidate in kb.neighbor_ids(anchor, edge.label, orientation):
            if injective and candidate in bound_entities:
                continue
            binding[free_variable] = candidate
            bound_entities.add(candidate)
            yield from recurse(index + 1)
            del binding[free_variable]
            bound_entities.discard(candidate)

    yield from recurse(0)


def pattern_bindings(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    fixed: Mapping[str, str],
    injective: bool = True,
) -> list[dict[str, str]]:
    """All bindings of :func:`iter_pattern_bindings` as a list."""
    return list(iter_pattern_bindings(kb, pattern, fixed, injective))


# ---------------------------------------------------------------------------
# Batched evaluation (the shared-traversal evaluator of the measures layer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepStep:
    """One compiled step of the sweep plan.

    ``anchor_slot``/``free_slot`` index the binding array.  When ``free_slot``
    is ``None`` both endpoints are already bound and the step is a constant
    time edge-presence check; otherwise the step expands the frontier through
    the ``(label, orientation)`` index anchored at ``anchor_slot``.
    """

    anchor_slot: int
    free_slot: int | None
    label: str
    orientation: str  # expansion: orientation from the anchor's perspective
    check_slot: int | None = None  # check: the other bound slot
    check_direction: str = "out"  # check: direction passed to has_edge


@dataclass(frozen=True)
class _SweepPlan:
    """A pattern compiled for the batched sweep: slots, steps, end position."""

    variable_names: tuple[str, ...]  # slot -> variable (slot 0 is START)
    steps: tuple[_SweepStep, ...]
    end_slot: int


@dataclass
class SweepResult:
    """Outcome of one batched sweep over many start entities.

    Attributes:
        counts: ``start -> end -> number of bindings`` (raw groups of the
            Section 5.3.2 query; pairs with ``end == start`` are included and
            left to the caller's filtering, mirroring the per-start evaluator).
        variable_sets: when requested, ``(start, end) -> variable -> set of
            entities`` over all bindings of the group (the ``uniq`` sets that
            the monocount aggregate needs).
        bindings_enumerated: total number of complete bindings produced.
    """

    counts: dict[str, dict[str, int]]
    variable_sets: dict[tuple[str, str], dict[str, set[str]]] | None
    bindings_enumerated: int


@lru_cache(maxsize=4096)
def _sweep_plan(pattern: ExplanationPattern) -> _SweepPlan:
    """Compile ``pattern`` once: edge order, slot assignment, index probes.

    Unlike :func:`_edge_order` (whose order is part of the lazy evaluator's
    observable enumeration order), the sweep groups bindings into counts, so
    the plan is free to order for speed: whenever an edge has both endpoints
    bound it is emitted immediately as a constant-time check, filtering
    partial bindings before any further frontier expansion.
    """
    remaining = sorted(pattern.edges, key=lambda edge: edge.key())
    bound = {START}
    order: list[PatternEdge] = []
    while remaining:
        emitted = True
        while emitted:
            emitted = False
            for index, edge in enumerate(remaining):
                if edge.source in bound and edge.target in bound:
                    order.append(remaining.pop(index))
                    emitted = True
                    break
        if not remaining:
            break
        for index, edge in enumerate(remaining):
            if edge.source in bound or edge.target in bound:
                bound.add(edge.source)
                bound.add(edge.target)
                order.append(remaining.pop(index))
                break
        else:
            raise RelationalError(
                "pattern is not connected to the fixed variables; cannot evaluate"
            )
    slots: dict[str, int] = {START: 0}
    names: list[str] = [START]
    steps: list[_SweepStep] = []

    def slot_of(variable: str) -> int:
        slot = slots.get(variable)
        if slot is None:
            slot = slots[variable] = len(names)
            names.append(variable)
        return slot

    for edge in order:
        source_bound = edge.source in slots
        target_bound = edge.target in slots
        if source_bound and target_bound:
            steps.append(
                _SweepStep(
                    anchor_slot=slots[edge.source],
                    free_slot=None,
                    label=edge.label,
                    orientation="",
                    check_slot=slots[edge.target],
                    check_direction="out" if edge.directed else "any",
                )
            )
        elif source_bound:
            anchor = slots[edge.source]
            steps.append(
                _SweepStep(
                    anchor_slot=anchor,
                    free_slot=slot_of(edge.target),
                    label=edge.label,
                    orientation="out" if edge.directed else "undirected",
                )
            )
        else:
            anchor = slots[edge.target]
            steps.append(
                _SweepStep(
                    anchor_slot=anchor,
                    free_slot=slot_of(edge.source),
                    label=edge.label,
                    orientation="in" if edge.directed else "undirected",
                )
            )
    end_slot = slots.get(END)
    if end_slot is None:
        raise RelationalError("the pattern does not constrain the end variable")
    return _SweepPlan(tuple(names), tuple(steps), end_slot)


def sweep_local_count_distributions(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    start_entities: Sequence[str] | None = None,
    collect_variable_sets: bool = False,
) -> SweepResult:
    """Evaluate the local-distribution query for many start entities at once.

    Semantically equivalent to running ``iter_pattern_bindings(kb, pattern,
    {START: s})`` for every ``s`` and grouping the bindings by ``(s, end)``,
    but the pattern is compiled once (:func:`_sweep_plan`, cached), bindings
    live in a flat slot array, and every candidate step is answered by the
    knowledge base's ``(label, orientation)`` index — no per-start setup, no
    per-binding dict copies.  This is the evaluator behind the distributional
    measures (Section 4.3) and the unpruned Figure 11 scenarios.

    Args:
        kb: the knowledge base.
        pattern: the explanation pattern (conjunctive query).
        start_entities: start entities to sweep; ``None`` sweeps every entity.
        collect_variable_sets: also gather per-``(start, end)`` per-variable
            entity sets (needed by the monocount aggregate).

    Returns:
        A :class:`SweepResult`; starts absent from the knowledge base simply
        contribute no groups, matching the per-start evaluator.
    """
    plan = _sweep_plan(pattern)
    steps = plan.steps
    num_steps = len(steps)
    last_step = num_steps - 1
    end_slot = plan.end_slot
    names = plan.variable_names
    counts: dict[str, dict[str, int]] = {}
    variable_sets: dict[tuple[str, str], dict[str, set[str]]] | None = (
        {} if collect_variable_sets else None
    )
    bindings_enumerated = 0

    binding: list[str] = [""] * len(names)
    used: set[str] = set()
    label_index = kb._label_index  # noqa: SLF001 - same-subsystem hot path
    has_edge = kb.has_edge

    def run_full(index: int, per_start: dict[str, int], start: str) -> None:
        """General recursion: complete bindings, per-variable entity sets."""
        nonlocal bindings_enumerated
        if index == num_steps:
            bindings_enumerated += 1
            end = binding[end_slot]
            per_start[end] = per_start.get(end, 0) + 1
            group = variable_sets.get((start, end))
            if group is None:
                group = variable_sets[(start, end)] = {name: set() for name in names}
            for name, entity in zip(names, binding):
                group[name].add(entity)
            return
        step = steps[index]
        if step.free_slot is None:
            if has_edge(
                binding[step.anchor_slot],
                binding[step.check_slot],
                step.label,
                step.check_direction,
            ):
                run_full(index + 1, per_start, start)
            return
        free_slot = step.free_slot
        for candidate in label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        ):
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            run_full(index + 1, per_start, start)
            used.discard(candidate)

    edge_presence = kb._edge_presence  # noqa: SLF001 - same-subsystem hot path

    def run_count(
        index: int,
        per_start: dict[str, int],
        # Bound as defaults so the recursion reads locals, not closure cells.
        steps: tuple = steps,
        binding: list = binding,
        used: set = used,
        label_index: dict = label_index,
        edge_presence: set = edge_presence,
        num_steps: int = num_steps,
        last_step: int = last_step,
        end_slot: int = end_slot,
    ) -> None:
        """Count-only recursion; the last step is counted, not expanded.

        Consecutive edge-presence checks are folded into one frame (they are
        pass-through filters), and the deepest expansion level is closed with
        arithmetic on the index rows instead of one recursive call, set insert
        and set discard per leaf — the bulk of the backtracking tree lives
        there, which is what makes the batched sweep scale to Figure 11's
        many-start workloads.
        """
        nonlocal bindings_enumerated
        step = steps[index]
        while step.free_slot is None:
            source = binding[step.anchor_slot]
            target = binding[step.check_slot]
            label = step.label
            if (source, target, label, "undirected") not in edge_presence:
                if step.check_direction == "out":
                    if (source, target, label, "out") not in edge_presence:
                        return
                elif (source, target, label, "out") not in edge_presence and (
                    source,
                    target,
                    label,
                    "in",
                ) not in edge_presence:
                    return
            index += 1
            if index == num_steps:
                bindings_enumerated += 1
                end = binding[end_slot]
                per_start[end] = per_start.get(end, 0) + 1
                return
            step = steps[index]
        row = label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        )
        if not row:
            return
        free_slot = step.free_slot
        if index == last_step:
            if free_slot == end_slot:
                for candidate in row:
                    if candidate not in used:
                        bindings_enumerated += 1
                        per_start[candidate] = per_start.get(candidate, 0) + 1
            else:
                valid = 0
                for candidate in row:
                    if candidate not in used:
                        valid += 1
                if valid:
                    bindings_enumerated += valid
                    end = binding[end_slot]
                    per_start[end] = per_start.get(end, 0) + valid
            return
        next_index = index + 1
        leaf = steps[next_index]
        if next_index == last_step and leaf.free_slot is not None:
            # Fuse the two deepest expansion levels into this frame: for
            # typical 2-3 step plans this leaves one Python frame per start.
            leaf_free = leaf.free_slot
            leaf_is_end = leaf_free == end_slot
            leaf_anchor = leaf.anchor_slot
            leaf_key = (leaf.label, leaf.orientation)
            for candidate in row:
                if candidate in used:
                    continue
                binding[free_slot] = candidate
                used.add(candidate)
                leaf_row = label_index[binding[leaf_anchor]].get(leaf_key, ())
                if leaf_row:
                    if leaf_is_end:
                        for end in leaf_row:
                            if end not in used:
                                bindings_enumerated += 1
                                per_start[end] = per_start.get(end, 0) + 1
                    else:
                        valid = 0
                        for leaf_candidate in leaf_row:
                            if leaf_candidate not in used:
                                valid += 1
                        if valid:
                            bindings_enumerated += valid
                            end = binding[end_slot]
                            per_start[end] = per_start.get(end, 0) + valid
                used.discard(candidate)
            return
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            run_count(next_index, per_start)
            used.discard(candidate)

    starts: Sequence[str] = (
        kb.entities if start_entities is None else start_entities
    )
    for start in starts:
        # Each distinct start is evaluated once; a duplicated entry in
        # ``start_entities`` must not double its groups or binding count.
        if start in counts or not kb.has_entity(start):
            continue
        binding[0] = start
        used.clear()
        used.add(start)
        per_start = counts[start] = {}
        if variable_sets is None:
            run_count(0, per_start)
        else:
            run_full(0, per_start, start)
        if not per_start:
            del counts[start]
    return SweepResult(counts, variable_sets, bindings_enumerated)


def count_qualifying_end_entities(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    threshold: float,
    exclude_end: str | None = None,
    bound: int | None = None,
) -> tuple[int, bool, int]:
    """Count end entities whose group count exceeds ``threshold``, with LIMIT.

    The compiled, early-terminating form of the Section 5.3.2 position query
    (``HAVING count > c ... LIMIT p``) used by the pruned ranking scenarios:
    evaluation aborts as soon as more than ``bound`` qualifying end entities
    are known, because the caller only needs to learn that the candidate
    cannot enter the current top-k.

    Returns:
        ``(qualifying, exact, bindings_enumerated)`` where ``exact`` is
        ``False`` when evaluation stopped at the bound (``qualifying`` is then
        a lower bound that already exceeds ``bound``).

    The traversal below deliberately mirrors ``run_count`` inside
    :func:`sweep_local_count_distributions` (check-step folding, fused leaf
    levels) with abort plumbing threaded through; any change to one must be
    applied to the other — ``tests/test_indexed_equivalence.py`` pins their
    agreement on random knowledge bases.
    """
    if not kb.has_entity(v_start):
        return (0, True, 0)
    plan = _sweep_plan(pattern)
    steps = plan.steps
    num_steps = len(steps)
    last_step = num_steps - 1
    end_slot = plan.end_slot
    binding: list[str] = [""] * len(plan.variable_names)
    binding[0] = v_start
    used = {v_start}
    label_index = kb._label_index  # noqa: SLF001 - same-subsystem hot path
    edge_presence = kb._edge_presence  # noqa: SLF001
    counts: dict[str, int] = {}
    qualifying: set[str] = set()
    bindings_enumerated = 0

    def group(end: str, additional: int) -> bool:
        """Fold ``additional`` bindings into ``end``'s group; True = abort."""
        nonlocal bindings_enumerated
        bindings_enumerated += additional
        if end == v_start or end == exclude_end:
            return False
        total = counts.get(end, 0) + additional
        counts[end] = total
        if total > threshold:
            qualifying.add(end)
            if bound is not None and len(qualifying) > bound:
                return True
        return False

    def rec(
        index: int,
        steps: tuple = steps,
        binding: list = binding,
        used: set = used,
        label_index: dict = label_index,
        edge_presence: set = edge_presence,
        num_steps: int = num_steps,
        last_step: int = last_step,
        end_slot: int = end_slot,
    ) -> bool:
        step = steps[index]
        while step.free_slot is None:
            source = binding[step.anchor_slot]
            target = binding[step.check_slot]
            label = step.label
            if (source, target, label, "undirected") not in edge_presence:
                if step.check_direction == "out":
                    if (source, target, label, "out") not in edge_presence:
                        return False
                elif (source, target, label, "out") not in edge_presence and (
                    source,
                    target,
                    label,
                    "in",
                ) not in edge_presence:
                    return False
            index += 1
            if index == num_steps:
                return group(binding[end_slot], 1)
            step = steps[index]
        row = label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        )
        if not row:
            return False
        free_slot = step.free_slot
        if index == last_step:
            if free_slot == end_slot:
                for candidate in row:
                    if candidate not in used and group(candidate, 1):
                        return True
                return False
            valid = sum(1 for candidate in row if candidate not in used)
            if valid:
                return group(binding[end_slot], valid)
            return False
        next_index = index + 1
        leaf = steps[next_index]
        if next_index == last_step and leaf.free_slot is not None:
            # Same two-deepest-level fusion as the batched sweep.
            leaf_free = leaf.free_slot
            leaf_is_end = leaf_free == end_slot
            leaf_anchor = leaf.anchor_slot
            leaf_key = (leaf.label, leaf.orientation)
            for candidate in row:
                if candidate in used:
                    continue
                binding[free_slot] = candidate
                used.add(candidate)
                stop = False
                leaf_row = label_index[binding[leaf_anchor]].get(leaf_key, ())
                if leaf_row:
                    if leaf_is_end:
                        for end in leaf_row:
                            if end not in used and group(end, 1):
                                stop = True
                                break
                    else:
                        valid = sum(
                            1
                            for leaf_candidate in leaf_row
                            if leaf_candidate not in used
                        )
                        if valid:
                            stop = group(binding[end_slot], valid)
                used.discard(candidate)
                if stop:
                    return True
            return False
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            stop = rec(next_index)
            used.discard(candidate)
            if stop:
                return True
        return False

    aborted = rec(0)
    return (len(qualifying), not aborted, bindings_enumerated)


def local_count_distribution(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    count_threshold: int | None = None,
    limit: int | None = None,
) -> dict[str, int]:
    """Instance counts of ``pattern`` grouped by end entity (start fixed).

    This is the direct evaluation of the Section 5.3.2 SQL query.  When
    ``count_threshold`` is given, only end entities whose count exceeds it are
    returned (the ``HAVING`` clause); when ``limit`` is additionally given the
    evaluation stops as soon as that many qualifying end entities are known —
    the pruning used by the position measure.

    Returns:
        Mapping from end entity to its instance count.  With ``limit`` set the
        returned counts of qualifying entities are lower bounds (evaluation
        stopped early), which is all the pruned position computation needs.
    """
    counts: dict[str, int] = {}
    qualifying: set[str] = set()
    for binding in iter_pattern_bindings(kb, pattern, {START: v_start}):
        end_entity = binding[END]
        if end_entity == v_start:
            continue
        counts[end_entity] = counts.get(end_entity, 0) + 1
        if count_threshold is not None and counts[end_entity] > count_threshold:
            qualifying.add(end_entity)
            if limit is not None and len(qualifying) >= limit:
                break
    if count_threshold is None:
        return counts
    return {entity: counts[entity] for entity in qualifying}
