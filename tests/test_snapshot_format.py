"""Property tests for snapshot payload format 2 (compiled array shipping).

Replica determinism rests on the snapshot round-trip preserving *everything*
observable: entity insertion order (handles, iteration order, ranking
tie-breaks), edge insertion order with per-edge directionality, the full
schema and the version label.  These tests pickle the payload (exactly what
crosses the process boundary) and compare the restored replica field by
field against the source across seeded workload generators; format-1
payloads must be rejected with an upgrade message.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.kb.graph import KnowledgeBase
from repro.kb.schema import Schema
from repro.parallel.snapshot import PAYLOAD_FORMAT, kb_from_payload, kb_to_payload
from repro.workloads import bipartite_kb, clustered_kb, scale_free_kb

GENERATOR_CASES = [
    lambda seed: scale_free_kb(num_entities=35, attach_per_entity=2, seed=seed),
    lambda seed: bipartite_kb(
        num_entities=30, num_attributes=8, attributes_per_entity=2, seed=seed
    ),
    lambda seed: clustered_kb(
        num_communities=2, community_size=11, intra_degree=3, inter_edges=6, seed=seed
    ),
]


def _random_mixed_kb(seed: int) -> KnowledgeBase:
    """A hand-rolled KB with undirected labels, types and unused relations."""
    rng = random.Random(seed)
    schema = Schema()
    schema.declare_relation("knows", directed=True)
    schema.declare_relation("spouse", directed=False)
    schema.declare_relation("declared_but_unused", directed=False)
    kb = KnowledgeBase(schema=schema)
    entities = [f"n{index}" for index in range(rng.randint(6, 14))]
    for index, entity in enumerate(entities):
        kb.add_entity(entity, "person" if index % 2 else None)
    for _ in range(rng.randint(8, 25)):
        source, target = rng.sample(entities, 2)
        kb.add_edge(source, target, rng.choice(["knows", "spouse"]))
    return kb


def _payload_round_trip(kb: KnowledgeBase):
    payload = kb_to_payload(kb)
    return kb_from_payload(pickle.loads(pickle.dumps(payload)))


class TestFormat2RoundTrip:
    @pytest.mark.parametrize("factory_index", range(len(GENERATOR_CASES)))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_generator_kbs_round_trip(self, factory_index, seed):
        kb = GENERATOR_CASES[factory_index](seed)
        replica, version = _payload_round_trip(kb)
        assert version == kb.version
        # entity insertion order (drives handles and ranking tie-breaks)
        assert list(replica.entities) == list(kb.entities)
        for entity in kb.entities:
            assert replica.handle_of(entity) == kb.handle_of(entity)
            assert replica.entity_type(entity) == kb.entity_type(entity)
        # edge insertion order with directionality
        assert [
            (e.source, e.target, e.label, e.directed) for e in replica.edges()
        ] == [(e.source, e.target, e.label, e.directed) for e in kb.edges()]
        # schema
        for label in kb.relation_labels():
            assert replica.schema.is_directed(label) == kb.schema.is_directed(label)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_mixed_kbs_round_trip(self, seed):
        kb = _random_mixed_kb(seed)
        replica, version = _payload_round_trip(kb)
        assert version == kb.version
        assert list(replica.entities) == list(kb.entities)
        assert [e.key() for e in replica.edges()] == [e.key() for e in kb.edges()]
        assert replica.label_counts() == kb.label_counts()
        # declared-but-unused relations survive via the schema tuples
        assert replica.schema.has_relation("declared_but_unused")
        assert not replica.schema.is_directed("declared_but_unused")
        # adjacency answers (including undirected edges) are identical
        for entity in kb.entities:
            assert replica.traversal_steps(entity) == kb.traversal_steps(entity)

    def test_payload_head_is_format_2(self):
        payload = kb_to_payload(_random_mixed_kb(1))
        assert payload[0] == PAYLOAD_FORMAT == 2


class TestFormatRejection:
    def test_format_1_rejected_with_upgrade_message(self):
        kb = _random_mixed_kb(2)
        payload = list(kb_to_payload(kb))
        payload[0] = 1
        with pytest.raises(ValueError, match="format 1.*Recycle"):
            kb_from_payload(tuple(payload))

    def test_unknown_format_rejected(self):
        kb = _random_mixed_kb(3)
        payload = list(kb_to_payload(kb))
        payload[0] = 999
        with pytest.raises(ValueError, match="payload format"):
            kb_from_payload(tuple(payload))
