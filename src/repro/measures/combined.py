"""Combinations of interestingness measures (Section 5.4.1).

The paper evaluates two simple lexicographic combinations and finds them
better than any individual measure:

* ``size + monocount`` — rank by size first, break ties by monocount;
* ``size + local-dist`` — rank by size first, break ties by the local
  distributional position.

:class:`LexicographicMeasure` implements the general primary/secondary (and
further) combination.  Because ranking code in this library sorts by a single
float, the combination folds the component values into one number by scaling:
the primary component dominates, the secondary only breaks ties.  The exact
tuple is also exposed via :meth:`key` for callers that prefer tuple sorting.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.explanation import Explanation
from repro.errors import MeasureError
from repro.kb.graph import KnowledgeBase
from repro.measures.aggregate import MonocountMeasure
from repro.measures.base import Measure, Monotonicity
from repro.measures.distributional import LocalDistributionMeasure
from repro.measures.structural import SizeMeasure

__all__ = ["LexicographicMeasure", "size_plus_monocount", "size_plus_local_dist"]

#: Scale separating lexicographic levels when folding into a single float.
#: Component values are clamped into (-_LEVEL_SCALE, _LEVEL_SCALE).
_LEVEL_SCALE = 1_000_000.0


class LexicographicMeasure(Measure):
    """Primary measure with one or more tie-breaking secondary measures."""

    monotonicity = Monotonicity.NONE
    higher_raw_is_better = True

    def __init__(self, components: Sequence[Measure], name: str | None = None) -> None:
        if not components:
            raise MeasureError("a lexicographic measure needs at least one component")
        self.components = list(components)
        self.name = name or "+".join(component.name for component in self.components)
        # The combination is anti-monotonic when every component is: growing
        # the pattern then lowers every level of the key.
        if all(component.is_anti_monotonic for component in self.components):
            self.monotonicity = Monotonicity.ANTI_MONOTONIC
        # The key is local only if every level of it is.
        self.local_scope = all(
            component.local_scope for component in self.components
        )

    def key(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> tuple[float, ...]:
        """The value tuple (primary first); larger tuples are more interesting."""
        return tuple(
            component.value(kb, explanation, v_start, v_end)
            for component in self.components
        )

    def raw_value(
        self, kb: KnowledgeBase, explanation: Explanation, v_start: str, v_end: str
    ) -> float:
        folded = 0.0
        for component_value in self.key(kb, explanation, v_start, v_end):
            clamped = max(min(component_value, _LEVEL_SCALE - 1), -(_LEVEL_SCALE - 1))
            folded = folded * _LEVEL_SCALE + clamped
        return folded


def size_plus_monocount() -> LexicographicMeasure:
    """The paper's ``size + monocount`` combination."""
    return LexicographicMeasure(
        [SizeMeasure(), MonocountMeasure()], name="size+monocount"
    )


def size_plus_local_dist(aggregate: str = "count") -> LexicographicMeasure:
    """The paper's ``size + local-dist`` combination."""
    return LexicographicMeasure(
        [SizeMeasure(), LocalDistributionMeasure(aggregate=aggregate)],
        name="size+local-dist",
    )
