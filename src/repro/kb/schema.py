"""Schema for the knowledge base: entity types and relation types.

The paper models the knowledge base as ``G = (V, E, lambda)`` where edges are
labelled with *primary relationship* names and can be directed (``starring``)
or undirected (``spouse``).  The schema records, for each relation label,
whether it is directed, and optionally the entity types it connects.  Entity
types themselves (person, movie, ...) are not needed by the core algorithms
but are used by the synthetic data generator and by the CLI for display.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import KnowledgeBaseError, UnknownRelationError

__all__ = ["RelationType", "EntityType", "Schema"]


@dataclass(frozen=True)
class RelationType:
    """A relationship label and its directionality.

    Attributes:
        name: the label used on edges (e.g. ``"starring"``).
        directed: whether edges with this label are directed.
        domain: optional entity type expected at the source end.
        range: optional entity type expected at the target end.
    """

    name: str
    directed: bool = True
    domain: str | None = None
    range: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeBaseError("relation type name must be non-empty")


@dataclass(frozen=True)
class EntityType:
    """An entity type (person, movie, award, ...)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise KnowledgeBaseError("entity type name must be non-empty")


class Schema:
    """Registry of entity types and relation types for a knowledge base.

    The schema is permissive by default: a :class:`KnowledgeBase` built
    without an explicit schema auto-registers relation labels as directed
    relations the first time they are seen.  Building a schema up front lets
    callers declare undirected relations (``spouse``) and entity types.
    """

    def __init__(
        self,
        relations: Iterable[RelationType] = (),
        entity_types: Iterable[EntityType] = (),
    ) -> None:
        self._relations: dict[str, RelationType] = {}
        self._entity_types: dict[str, EntityType] = {}
        for relation in relations:
            self.add_relation(relation)
        for entity_type in entity_types:
            self.add_entity_type(entity_type)

    # -- relations ---------------------------------------------------------

    def add_relation(self, relation: RelationType) -> None:
        """Register a relation type, replacing any previous declaration."""
        self._relations[relation.name] = relation

    def declare_relation(
        self,
        name: str,
        directed: bool = True,
        domain: str | None = None,
        range: str | None = None,
    ) -> RelationType:
        """Convenience wrapper that builds and registers a relation type."""
        relation = RelationType(name=name, directed=directed, domain=domain, range=range)
        self.add_relation(relation)
        return relation

    def relation(self, name: str) -> RelationType:
        """Return the relation type for ``name``.

        Raises:
            UnknownRelationError: if the label was never declared.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        """Whether ``name`` has been declared."""
        return name in self._relations

    def is_directed(self, name: str) -> bool:
        """Whether edges labelled ``name`` are directed."""
        return self.relation(name).directed

    @property
    def relations(self) -> Mapping[str, RelationType]:
        """Read-only view of all declared relation types."""
        return dict(self._relations)

    # -- entity types ------------------------------------------------------

    def add_entity_type(self, entity_type: EntityType) -> None:
        """Register an entity type."""
        self._entity_types[entity_type.name] = entity_type

    def declare_entity_type(self, name: str, description: str = "") -> EntityType:
        """Convenience wrapper that builds and registers an entity type."""
        entity_type = EntityType(name=name, description=description)
        self.add_entity_type(entity_type)
        return entity_type

    def entity_type(self, name: str) -> EntityType:
        """Return the entity type for ``name``."""
        try:
            return self._entity_types[name]
        except KeyError:
            raise KnowledgeBaseError(f"unknown entity type: {name!r}") from None

    def has_entity_type(self, name: str) -> bool:
        """Whether the entity type ``name`` has been declared."""
        return name in self._entity_types

    @property
    def entity_types(self) -> Mapping[str, EntityType]:
        """Read-only view of all declared entity types."""
        return dict(self._entity_types)

    # -- misc --------------------------------------------------------------

    def __iter__(self) -> Iterator[RelationType]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def copy(self) -> "Schema":
        """Return an independent copy of the schema."""
        return Schema(self._relations.values(), self._entity_types.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema({len(self._relations)} relations, "
            f"{len(self._entity_types)} entity types)"
        )


def default_entertainment_schema() -> Schema:
    """Schema mirroring the paper's entertainment knowledge base vocabulary."""
    schema = Schema()
    for name in ("person", "movie", "award", "genre", "tv_show", "character"):
        schema.declare_entity_type(name)
    directed = [
        ("starring", "movie", "person"),
        ("director", "movie", "person"),
        ("producer", "movie", "person"),
        ("writer", "movie", "person"),
        ("music_by", "movie", "person"),
        ("genre", "movie", "genre"),
        ("award_won", "person", "award"),
        ("nominated_for", "person", "award"),
        ("narrator", "movie", "person"),
        ("cast_member", "tv_show", "person"),
    ]
    for name, domain, range_ in directed:
        schema.declare_relation(name, directed=True, domain=domain, range=range_)
    undirected = [
        ("spouse", "person", "person"),
        ("partner", "person", "person"),
        ("sibling", "person", "person"),
        ("relative", "person", "person"),
    ]
    for name, domain, range_ in undirected:
        schema.declare_relation(name, directed=False, domain=domain, range=range_)
    return schema
