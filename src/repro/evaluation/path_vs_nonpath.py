"""Path versus non-path explanation analysis (Section 5.4.2).

The paper motivates its non-path explanation patterns by showing that, among
the explanations human judges consider most interesting, only 36% of the
top-5 and 38% of the top-10 are simple paths — so restricting explanations to
paths (as keyword-search systems do) would lose most of the interesting ones.
This module reproduces that statistic with the simulated judge pool: for each
pair the enumerated explanations are ordered by their average judge grade and
the share of path-shaped patterns among the best ones is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explanation import Explanation
from repro.evaluation.user_study import SimulatedJudgePool

__all__ = ["PathShare", "path_share_among_top", "aggregate_path_share"]

#: Explanations must reach this average grade to count as "interesting",
#: mirroring the paper's requirement of an average score of at least 1.
MINIMUM_AVERAGE_GRADE = 1.0


@dataclass(frozen=True)
class PathShare:
    """Share of path-shaped explanations among the top judged explanations."""

    considered: int
    paths: int

    @property
    def fraction(self) -> float:
        return self.paths / self.considered if self.considered else 0.0

    @property
    def non_path_fraction(self) -> float:
        return 1.0 - self.fraction if self.considered else 0.0


def path_share_among_top(
    explanations: list[Explanation],
    judges: SimulatedJudgePool,
    top: int = 10,
    minimum_average_grade: float = MINIMUM_AVERAGE_GRADE,
) -> PathShare:
    """Share of paths among the ``top`` judged-most-interesting explanations.

    Explanations are ordered by their average judge grade (ties broken by the
    deterministic canonical pattern key); only explanations with average grade
    at least ``minimum_average_grade`` are eligible, as in the paper.
    """
    graded = [
        (judges.average_grade(explanation), explanation) for explanation in explanations
    ]
    eligible = [
        (grade, explanation)
        for grade, explanation in graded
        if grade >= minimum_average_grade
    ]
    eligible.sort(key=lambda item: (-item[0], item[1].pattern.canonical_key))
    selected = [explanation for _, explanation in eligible[:top]]
    paths = sum(1 for explanation in selected if explanation.is_path())
    return PathShare(considered=len(selected), paths=paths)


def aggregate_path_share(shares: list[PathShare]) -> PathShare:
    """Pool per-pair shares into one overall statistic."""
    return PathShare(
        considered=sum(share.considered for share in shares),
        paths=sum(share.paths for share in shares),
    )
