"""Property-based tests for :class:`repro.service.cache.VersionedLRUCache`.

Seeded random operation sequences (stdlib ``random`` only) drive the cache
through get/put/purge/TTL-expiry interleavings and check the invariants the
serving layer stakes its correctness on:

* the live entry count never exceeds the configured capacity;
* a purged version is dead forever: no later ``get`` may return an entry
  stored under it (until a fresh ``put`` under that version);
* a returned value is always exactly the *latest* value put for that
  ``(key, version)``;
* an entry older than the TTL is never returned.

The oracle is a deliberately naive model (a plain dict plus an insertion
clock) — if the optimised OrderedDict implementation ever diverges, the
failing seed reproduces it deterministically.
"""

from __future__ import annotations

import random

import pytest

from repro.service.cache import VersionedLRUCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.mark.parametrize("seed", [0, 7, 42, 1234, 98765])
@pytest.mark.parametrize("capacity,ttl", [(8, None), (4, 10.0), (16, 3.0)])
def test_random_operation_sequences_hold_invariants(seed, capacity, ttl):
    rng = random.Random(seed)
    clock = FakeClock()
    cache = VersionedLRUCache(capacity=capacity, ttl_seconds=ttl, clock=clock)

    keys = [f"key{i}" for i in range(6)]
    versions = list(range(4))
    # model: (version, key) -> (value, inserted_at); mirrors puts/purges but
    # NOT evictions — the model only promises "if the cache answers, the
    # answer is right", which is the cache's actual contract
    model: dict[tuple[int, str], tuple[int, float]] = {}
    purge_survivor: int | None = None
    next_value = 0

    for step in range(400):
        operation = rng.random()
        key = keys[rng.randrange(len(keys))]
        version = versions[rng.randrange(len(versions))]
        if operation < 0.45:  # put
            next_value += 1
            cache.put(key, version, next_value)
            model[(version, key)] = (next_value, clock.now)
        elif operation < 0.85:  # get
            value = cache.get(key, version)
            if value is not None:
                expected, inserted_at = model.get((version, key), (None, 0.0))
                assert value == expected, (
                    f"step {step}: cache returned {value!r} for {(version, key)}, "
                    f"latest put was {expected!r}"
                )
                if ttl is not None:
                    assert clock.now - inserted_at <= ttl, (
                        f"step {step}: returned an entry {clock.now - inserted_at}s "
                        f"old with ttl={ttl}"
                    )
                if purge_survivor is not None:
                    # entries can only have been (re)inserted after the purge
                    # if their version died then — verified via the model above
                    assert (version, key) in model
        elif operation < 0.93:  # purge all but one version
            purge_survivor = version
            cache.purge_versions_except(version)
            model = {
                (entry_version, entry_key): value
                for (entry_version, entry_key), value in model.items()
                if entry_version == version
            }
        else:  # time passes (TTL pressure)
            clock.now += rng.choice([0.5, 2.0, 5.0])

        assert len(cache) <= capacity, f"step {step}: {len(cache)} > {capacity}"

    # closing sweep: every purged-version entry must be unreachable
    if purge_survivor is not None:
        for version in versions:
            for key in keys:
                value = cache.get(key, version)
                if value is not None:
                    assert (version, key) in model


@pytest.mark.parametrize("seed", [11, 77])
def test_purged_version_stays_dead_without_new_puts(seed):
    rng = random.Random(seed)
    cache = VersionedLRUCache(capacity=64)
    for index in range(40):
        cache.put(f"key{index % 10}", version=rng.randrange(3), value=index)
    survivor = 1
    stale_before = sum(1 for version, _ in cache.keys() if version != survivor)
    purged = cache.purge_versions_except(survivor)
    assert purged == stale_before
    for version, _key in cache.keys():
        assert version == survivor
    for index in range(10):
        for version in (0, 2):
            assert cache.get(f"key{index}", version) is None


def test_ttl_expiry_counts_and_capacity_bound():
    clock = FakeClock()
    cache = VersionedLRUCache(capacity=3, ttl_seconds=1.0, clock=clock)
    cache.put("a", 0, 1)
    cache.put("b", 0, 2)
    clock.now += 2.0
    assert cache.get("a", 0) is None
    assert cache.stats.expirations == 1
    cache.put("c", 0, 3)
    cache.put("d", 0, 4)
    cache.put("e", 0, 5)
    assert len(cache) <= 3
    assert cache.stats.evictions >= 1
