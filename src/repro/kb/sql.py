"""Pattern-to-SQL compilation and conjunctive evaluation over the edge relation.

Section 5.3.2 computes the local distributional position of an explanation by
translating its pattern into a self-join SQL query over the edge relation
``R(eid1, eid2, rel)``, grouping by the end entity and counting, with a
``HAVING count > c`` filter and a ``LIMIT`` clause for pruning.  This module
provides:

* :func:`compile_pattern_sql` — render exactly that SQL text for a pattern
  (useful for documentation, the CLI and tests of the compilation rules);
* :func:`pattern_bindings` — evaluate the conjunctive query directly against
  the knowledge base with some variables fixed (the start entity, optionally
  the end entity), returning all variable bindings;
* :func:`local_count_distribution` — the grouped counts per end entity that
  the SQL query would return, with optional ``HAVING``/``LIMIT`` pruning;
* :func:`sweep_local_count_distributions` — the **batched evaluator**: the
  pattern is compiled once (edge order, slot assignment) and a single frontier
  expansion over the knowledge base's ``(label, orientation)`` indexes sweeps
  every requested start entity, grouping counts by ``(start, end)``.  The
  distributional measures of Section 4.3 use it to turn their
  O(pairs × match) loops into one shared traversal.

The evaluation deliberately mirrors instance semantics (Definition 2):
bindings are injective and non-target variables avoid the target entities.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Iterator, Mapping, Sequence
from weakref import WeakKeyDictionary

from repro.core.pattern import END, START, ExplanationPattern, PatternEdge
from repro.errors import RelationalError
from repro.kb.compiled import ORIENT_CODE, CompiledKB
from repro.kb.graph import KnowledgeBase
from repro.resilience.deadline import current_deadline


def _deadline_poll() -> None:
    """Per-start cancellation checkpoint for the sweep kernels.

    Resolved at call time (not kernel-build time) because the ambient
    deadline is per-request while kernels are cached per compiled view.
    One ContextVar read per sweep start; a strided clock probe when armed.
    """
    deadline = current_deadline()
    if deadline is not None:
        deadline.tick()

__all__ = [
    "CompiledSQL",
    "compile_pattern_sql",
    "pattern_bindings",
    "iter_pattern_bindings",
    "local_count_distribution",
    "SweepResult",
    "sweep_local_count_distributions",
    "sweep_position_count",
    "count_qualifying_end_entities",
]


@dataclass(frozen=True)
class CompiledSQL:
    """The SQL rendering of an explanation pattern's local-distribution query."""

    text: str
    table_aliases: tuple[str, ...]
    group_by: tuple[str, ...]


def _alias_column(alias: str, column: str) -> str:
    return f"{alias}.{column}"


def compile_pattern_sql(
    pattern: ExplanationPattern,
    v_start: str,
    count_threshold: int,
    limit: int | None = None,
    relation_name: str = "R",
) -> CompiledSQL:
    """Render the Section 5.3.2 SQL query for ``pattern``.

    Each pattern edge becomes one aliased copy of the edge relation; shared
    variables become equality predicates between the corresponding columns;
    the query groups by the end-variable column and keeps groups whose count
    exceeds ``count_threshold``.

    Example (co-starring pattern)::

        SELECT v_start, R2.eid1, count(*) AS count
        FROM R AS R1, R AS R2
        WHERE ...
        GROUP BY v_start, R2.eid1
        HAVING count > c
    """
    edges = sorted(pattern.edges, key=lambda edge: edge.key())
    if not edges:
        raise RelationalError("cannot compile a pattern without edges to SQL")
    aliases = [f"{relation_name}{index + 1}" for index in range(len(edges))]

    # Each variable is represented by the first (alias, column) that binds it.
    variable_column: dict[str, str] = {}
    predicates: list[str] = []
    for alias, edge in zip(aliases, edges):
        predicates.append(f"{alias}.rel = '{edge.label}'")
        for column, variable in (("eid1", edge.source), ("eid2", edge.target)):
            reference = _alias_column(alias, column)
            if variable in variable_column:
                predicates.append(f"{variable_column[variable]} = {reference}")
            else:
                variable_column[variable] = reference
    predicates.append(f"{variable_column[START]} = '{v_start}'")

    end_column = variable_column.get(END)
    if end_column is None:
        raise RelationalError("the pattern does not constrain the end variable")

    from_clause = ", ".join(f"{relation_name} AS {alias}" for alias in aliases)
    where_clause = "\n  AND ".join(predicates)
    limit_clause = f"\nLIMIT {limit}" if limit is not None else ""
    text = (
        f"SELECT {variable_column[START]} AS v_start, {end_column} AS v_end, count(*) AS count\n"
        f"FROM {from_clause}\n"
        f"WHERE {where_clause}\n"
        f"GROUP BY {variable_column[START]}, {end_column}\n"
        f"HAVING count > {count_threshold}{limit_clause}"
    )
    return CompiledSQL(
        text=text,
        table_aliases=tuple(aliases),
        group_by=(variable_column[START], end_column),
    )


# ---------------------------------------------------------------------------
# Conjunctive evaluation
# ---------------------------------------------------------------------------


def _edge_order(pattern: ExplanationPattern, fixed: Mapping[str, str]) -> list[PatternEdge]:
    """Order edges so each has at least one endpoint bound when reached."""
    bound = set(fixed)
    remaining = sorted(pattern.edges, key=lambda edge: edge.key())
    ordered: list[PatternEdge] = []
    while remaining:
        for index, edge in enumerate(remaining):
            if edge.source in bound or edge.target in bound:
                ordered.append(edge)
                bound.add(edge.source)
                bound.add(edge.target)
                remaining.pop(index)
                break
        else:
            raise RelationalError(
                "pattern is not connected to the fixed variables; cannot evaluate"
            )
    return ordered


def iter_pattern_bindings(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    fixed: Mapping[str, str],
    injective: bool = True,
) -> Iterator[dict[str, str]]:
    """Yield all variable bindings of ``pattern`` extending ``fixed``.

    Args:
        kb: the knowledge base.
        pattern: the explanation pattern (the conjunctive query).
        fixed: variables with predetermined entities; must include the start
            variable (the end variable may be free, which is how local
            distributions vary the end entity).
        injective: enforce subgraph semantics (distinct variables map to
            distinct entities).  Matches Definition 2.
    """
    if START not in fixed:
        raise RelationalError("the start variable must be fixed")
    for variable, entity in fixed.items():
        if variable not in pattern.variables:
            raise RelationalError(f"fixed variable {variable!r} not in pattern")
        if not kb.has_entity(entity):
            return

    order = _edge_order(pattern, fixed)
    binding: dict[str, str] = dict(fixed)
    bound_entities = set(binding.values())

    def recurse(index: int) -> Iterator[dict[str, str]]:
        if index == len(order):
            yield dict(binding)
            return
        edge = order[index]
        source_entity = binding.get(edge.source)
        target_entity = binding.get(edge.target)
        if source_entity is not None and target_entity is not None:
            direction = "out" if edge.directed else "any"
            if kb.has_edge(source_entity, target_entity, edge.label, direction):
                yield from recurse(index + 1)
            return
        if source_entity is not None:
            anchor, free_variable = source_entity, edge.target
            orientation = "out" if edge.directed else "undirected"
        else:
            anchor, free_variable = target_entity, edge.source
            orientation = "in" if edge.directed else "undirected"
        for candidate in kb.neighbor_ids(anchor, edge.label, orientation):
            if injective and candidate in bound_entities:
                continue
            binding[free_variable] = candidate
            bound_entities.add(candidate)
            yield from recurse(index + 1)
            del binding[free_variable]
            bound_entities.discard(candidate)

    yield from recurse(0)


def pattern_bindings(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    fixed: Mapping[str, str],
    injective: bool = True,
) -> list[dict[str, str]]:
    """All bindings of :func:`iter_pattern_bindings` as a list."""
    return list(iter_pattern_bindings(kb, pattern, fixed, injective))


# ---------------------------------------------------------------------------
# Batched evaluation (the shared-traversal evaluator of the measures layer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SweepStep:
    """One compiled step of the sweep plan.

    ``anchor_slot``/``free_slot`` index the binding array.  When ``free_slot``
    is ``None`` both endpoints are already bound and the step is a constant
    time edge-presence check; otherwise the step expands the frontier through
    the ``(label, orientation)`` index anchored at ``anchor_slot``.
    """

    anchor_slot: int
    free_slot: int | None
    label: str
    orientation: str  # expansion: orientation from the anchor's perspective
    check_slot: int | None = None  # check: the other bound slot
    check_direction: str = "out"  # check: direction passed to has_edge


@dataclass(frozen=True)
class _SweepPlan:
    """A pattern compiled for the batched sweep: slots, steps, end position."""

    variable_names: tuple[str, ...]  # slot -> variable (slot 0 is START)
    steps: tuple[_SweepStep, ...]
    end_slot: int


@dataclass
class SweepResult:
    """Outcome of one batched sweep over many start entities.

    Attributes:
        counts: ``start -> end -> number of bindings`` (raw groups of the
            Section 5.3.2 query; pairs with ``end == start`` are included and
            left to the caller's filtering, mirroring the per-start evaluator).
        variable_sets: when requested, ``(start, end) -> variable -> set of
            entities`` over all bindings of the group (the ``uniq`` sets that
            the monocount aggregate needs).
        bindings_enumerated: total number of complete bindings produced.
    """

    counts: dict[str, dict[str, int]]
    variable_sets: dict[tuple[str, str], dict[str, set[str]]] | None
    bindings_enumerated: int


@lru_cache(maxsize=4096)
def _sweep_plan(pattern: ExplanationPattern) -> _SweepPlan:
    """Compile ``pattern`` once: edge order, slot assignment, index probes.

    Unlike :func:`_edge_order` (whose order is part of the lazy evaluator's
    observable enumeration order), the sweep groups bindings into counts, so
    the plan is free to order for speed: whenever an edge has both endpoints
    bound it is emitted immediately as a constant-time check, filtering
    partial bindings before any further frontier expansion.
    """
    remaining = sorted(pattern.edges, key=lambda edge: edge.key())
    bound = {START}
    order: list[PatternEdge] = []
    while remaining:
        emitted = True
        while emitted:
            emitted = False
            for index, edge in enumerate(remaining):
                if edge.source in bound and edge.target in bound:
                    order.append(remaining.pop(index))
                    emitted = True
                    break
        if not remaining:
            break
        for index, edge in enumerate(remaining):
            if edge.source in bound or edge.target in bound:
                bound.add(edge.source)
                bound.add(edge.target)
                order.append(remaining.pop(index))
                break
        else:
            raise RelationalError(
                "pattern is not connected to the fixed variables; cannot evaluate"
            )
    slots: dict[str, int] = {START: 0}
    names: list[str] = [START]
    steps: list[_SweepStep] = []

    def slot_of(variable: str) -> int:
        slot = slots.get(variable)
        if slot is None:
            slot = slots[variable] = len(names)
            names.append(variable)
        return slot

    for edge in order:
        source_bound = edge.source in slots
        target_bound = edge.target in slots
        if source_bound and target_bound:
            steps.append(
                _SweepStep(
                    anchor_slot=slots[edge.source],
                    free_slot=None,
                    label=edge.label,
                    orientation="",
                    check_slot=slots[edge.target],
                    check_direction="out" if edge.directed else "any",
                )
            )
        elif source_bound:
            anchor = slots[edge.source]
            steps.append(
                _SweepStep(
                    anchor_slot=anchor,
                    free_slot=slot_of(edge.target),
                    label=edge.label,
                    orientation="out" if edge.directed else "undirected",
                )
            )
        else:
            anchor = slots[edge.target]
            steps.append(
                _SweepStep(
                    anchor_slot=anchor,
                    free_slot=slot_of(edge.source),
                    label=edge.label,
                    orientation="in" if edge.directed else "undirected",
                )
            )
    end_slot = slots.get(END)
    if end_slot is None:
        raise RelationalError("the pattern does not constrain the end variable")
    return _SweepPlan(tuple(names), tuple(steps), end_slot)


def sweep_local_count_distributions(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    start_entities: Sequence[str] | None = None,
    collect_variable_sets: bool = False,
) -> SweepResult:
    """Evaluate the local-distribution query for many start entities at once.

    Semantically equivalent to running ``iter_pattern_bindings(kb, pattern,
    {START: s})`` for every ``s`` and grouping the bindings by ``(s, end)``,
    but the pattern is compiled once (:func:`_sweep_plan`, cached), bindings
    live in a flat slot array, and every candidate step is answered by the
    knowledge base's ``(label, orientation)`` index — no per-start setup, no
    per-binding dict copies.  This is the evaluator behind the distributional
    measures (Section 4.3) and the unpruned Figure 11 scenarios.

    Args:
        kb: the knowledge base.
        pattern: the explanation pattern (conjunctive query).
        start_entities: start entities to sweep; ``None`` sweeps every entity.
        collect_variable_sets: also gather per-``(start, end)`` per-variable
            entity sets (needed by the monocount aggregate).

    Returns:
        A :class:`SweepResult`; starts absent from the knowledge base simply
        contribute no groups, matching the per-start evaluator.
    """
    if isinstance(kb, CompiledKB):
        return _sweep_compiled(kb, pattern, start_entities, collect_variable_sets)
    plan = _sweep_plan(pattern)
    steps = plan.steps
    num_steps = len(steps)
    last_step = num_steps - 1
    end_slot = plan.end_slot
    names = plan.variable_names
    counts: dict[str, dict[str, int]] = {}
    variable_sets: dict[tuple[str, str], dict[str, set[str]]] | None = (
        {} if collect_variable_sets else None
    )
    bindings_enumerated = 0

    binding: list[str] = [""] * len(names)
    used: set[str] = set()
    label_index = kb._label_index  # noqa: SLF001 - same-subsystem hot path
    has_edge = kb.has_edge

    def run_full(index: int, per_start: dict[str, int], start: str) -> None:
        """General recursion: complete bindings, per-variable entity sets."""
        nonlocal bindings_enumerated
        if index == num_steps:
            bindings_enumerated += 1
            end = binding[end_slot]
            per_start[end] = per_start.get(end, 0) + 1
            group = variable_sets.get((start, end))
            if group is None:
                group = variable_sets[(start, end)] = {name: set() for name in names}
            for name, entity in zip(names, binding):
                group[name].add(entity)
            return
        step = steps[index]
        if step.free_slot is None:
            if has_edge(
                binding[step.anchor_slot],
                binding[step.check_slot],
                step.label,
                step.check_direction,
            ):
                run_full(index + 1, per_start, start)
            return
        free_slot = step.free_slot
        for candidate in label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        ):
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            run_full(index + 1, per_start, start)
            used.discard(candidate)

    edge_presence = kb._edge_presence  # noqa: SLF001 - same-subsystem hot path

    def run_count(
        index: int,
        per_start: dict[str, int],
        # Bound as defaults so the recursion reads locals, not closure cells.
        steps: tuple = steps,
        binding: list = binding,
        used: set = used,
        label_index: dict = label_index,
        edge_presence: set = edge_presence,
        num_steps: int = num_steps,
        last_step: int = last_step,
        end_slot: int = end_slot,
    ) -> None:
        """Count-only recursion; the last step is counted, not expanded.

        Consecutive edge-presence checks are folded into one frame (they are
        pass-through filters), and the deepest expansion level is closed with
        arithmetic on the index rows instead of one recursive call, set insert
        and set discard per leaf — the bulk of the backtracking tree lives
        there, which is what makes the batched sweep scale to Figure 11's
        many-start workloads.
        """
        nonlocal bindings_enumerated
        step = steps[index]
        while step.free_slot is None:
            source = binding[step.anchor_slot]
            target = binding[step.check_slot]
            label = step.label
            if (source, target, label, "undirected") not in edge_presence:
                if step.check_direction == "out":
                    if (source, target, label, "out") not in edge_presence:
                        return
                elif (source, target, label, "out") not in edge_presence and (
                    source,
                    target,
                    label,
                    "in",
                ) not in edge_presence:
                    return
            index += 1
            if index == num_steps:
                bindings_enumerated += 1
                end = binding[end_slot]
                per_start[end] = per_start.get(end, 0) + 1
                return
            step = steps[index]
        row = label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        )
        if not row:
            return
        free_slot = step.free_slot
        if index == last_step:
            if free_slot == end_slot:
                for candidate in row:
                    if candidate not in used:
                        bindings_enumerated += 1
                        per_start[candidate] = per_start.get(candidate, 0) + 1
            else:
                valid = 0
                for candidate in row:
                    if candidate not in used:
                        valid += 1
                if valid:
                    bindings_enumerated += valid
                    end = binding[end_slot]
                    per_start[end] = per_start.get(end, 0) + valid
            return
        next_index = index + 1
        leaf = steps[next_index]
        if next_index == last_step and leaf.free_slot is not None:
            # Fuse the two deepest expansion levels into this frame: for
            # typical 2-3 step plans this leaves one Python frame per start.
            leaf_free = leaf.free_slot
            leaf_is_end = leaf_free == end_slot
            leaf_anchor = leaf.anchor_slot
            leaf_key = (leaf.label, leaf.orientation)
            for candidate in row:
                if candidate in used:
                    continue
                binding[free_slot] = candidate
                used.add(candidate)
                leaf_row = label_index[binding[leaf_anchor]].get(leaf_key, ())
                if leaf_row:
                    if leaf_is_end:
                        for end in leaf_row:
                            if end not in used:
                                bindings_enumerated += 1
                                per_start[end] = per_start.get(end, 0) + 1
                    else:
                        valid = 0
                        for leaf_candidate in leaf_row:
                            if leaf_candidate not in used:
                                valid += 1
                        if valid:
                            bindings_enumerated += valid
                            end = binding[end_slot]
                            per_start[end] = per_start.get(end, 0) + valid
                used.discard(candidate)
            return
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            run_count(next_index, per_start)
            used.discard(candidate)

    starts: Sequence[str] = (
        kb.entities if start_entities is None else start_entities
    )
    for start in starts:
        _deadline_poll()
        # Each distinct start is evaluated once; a duplicated entry in
        # ``start_entities`` must not double its groups or binding count.
        if start in counts or not kb.has_entity(start):
            continue
        binding[0] = start
        used.clear()
        used.add(start)
        per_start = counts[start] = {}
        if variable_sets is None:
            run_count(0, per_start)
        else:
            run_full(0, per_start, start)
        if not per_start:
            del counts[start]
    return SweepResult(counts, variable_sets, bindings_enumerated)


def count_qualifying_end_entities(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    threshold: float,
    exclude_end: str | None = None,
    bound: int | None = None,
) -> tuple[int, bool, int]:
    """Count end entities whose group count exceeds ``threshold``, with LIMIT.

    The compiled, early-terminating form of the Section 5.3.2 position query
    (``HAVING count > c ... LIMIT p``) used by the pruned ranking scenarios:
    evaluation aborts as soon as more than ``bound`` qualifying end entities
    are known, because the caller only needs to learn that the candidate
    cannot enter the current top-k.

    Returns:
        ``(qualifying, exact, bindings_enumerated)`` where ``exact`` is
        ``False`` when evaluation stopped at the bound (``qualifying`` is then
        a lower bound that already exceeds ``bound``).

    The traversal below deliberately mirrors ``run_count`` inside
    :func:`sweep_local_count_distributions` (check-step folding, fused leaf
    levels) with abort plumbing threaded through; any change to one must be
    applied to the other — ``tests/test_indexed_equivalence.py`` pins their
    agreement on random knowledge bases.
    """
    _deadline_poll()
    if isinstance(kb, CompiledKB):
        return _count_qualifying_compiled(
            kb, pattern, v_start, threshold, exclude_end, bound
        )
    if not kb.has_entity(v_start):
        return (0, True, 0)
    plan = _sweep_plan(pattern)
    steps = plan.steps
    num_steps = len(steps)
    last_step = num_steps - 1
    end_slot = plan.end_slot
    binding: list[str] = [""] * len(plan.variable_names)
    binding[0] = v_start
    used = {v_start}
    label_index = kb._label_index  # noqa: SLF001 - same-subsystem hot path
    edge_presence = kb._edge_presence  # noqa: SLF001
    counts: dict[str, int] = {}
    qualifying: set[str] = set()
    bindings_enumerated = 0

    def group(end: str, additional: int) -> bool:
        """Fold ``additional`` bindings into ``end``'s group; True = abort."""
        nonlocal bindings_enumerated
        bindings_enumerated += additional
        if end == v_start or end == exclude_end:
            return False
        total = counts.get(end, 0) + additional
        counts[end] = total
        if total > threshold:
            qualifying.add(end)
            if bound is not None and len(qualifying) > bound:
                return True
        return False

    def rec(
        index: int,
        steps: tuple = steps,
        binding: list = binding,
        used: set = used,
        label_index: dict = label_index,
        edge_presence: set = edge_presence,
        num_steps: int = num_steps,
        last_step: int = last_step,
        end_slot: int = end_slot,
    ) -> bool:
        step = steps[index]
        while step.free_slot is None:
            source = binding[step.anchor_slot]
            target = binding[step.check_slot]
            label = step.label
            if (source, target, label, "undirected") not in edge_presence:
                if step.check_direction == "out":
                    if (source, target, label, "out") not in edge_presence:
                        return False
                elif (source, target, label, "out") not in edge_presence and (
                    source,
                    target,
                    label,
                    "in",
                ) not in edge_presence:
                    return False
            index += 1
            if index == num_steps:
                return group(binding[end_slot], 1)
            step = steps[index]
        row = label_index[binding[step.anchor_slot]].get(
            (step.label, step.orientation), ()
        )
        if not row:
            return False
        free_slot = step.free_slot
        if index == last_step:
            if free_slot == end_slot:
                for candidate in row:
                    if candidate not in used and group(candidate, 1):
                        return True
                return False
            valid = sum(1 for candidate in row if candidate not in used)
            if valid:
                return group(binding[end_slot], valid)
            return False
        next_index = index + 1
        leaf = steps[next_index]
        if next_index == last_step and leaf.free_slot is not None:
            # Same two-deepest-level fusion as the batched sweep.
            leaf_free = leaf.free_slot
            leaf_is_end = leaf_free == end_slot
            leaf_anchor = leaf.anchor_slot
            leaf_key = (leaf.label, leaf.orientation)
            for candidate in row:
                if candidate in used:
                    continue
                binding[free_slot] = candidate
                used.add(candidate)
                stop = False
                leaf_row = label_index[binding[leaf_anchor]].get(leaf_key, ())
                if leaf_row:
                    if leaf_is_end:
                        for end in leaf_row:
                            if end not in used and group(end, 1):
                                stop = True
                                break
                    else:
                        valid = sum(
                            1
                            for leaf_candidate in leaf_row
                            if leaf_candidate not in used
                        )
                        if valid:
                            stop = group(binding[end_slot], valid)
                used.discard(candidate)
                if stop:
                    return True
            return False
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            stop = rec(next_index)
            used.discard(candidate)
            if stop:
                return True
        return False

    aborted = rec(0)
    return (len(qualifying), not aborted, bindings_enumerated)


# ---------------------------------------------------------------------------
# Integer-handle kernels for the compiled backend
# ---------------------------------------------------------------------------
#
# A CompiledKB answers the same sweep with the same grouped counts, but the
# traversal runs on integer handles end to end: each expansion step of the
# compiled plan holds its (label, orientation) CSR plane's lazily materialised
# row/row-set tables directly (no string-keyed dict probe, no tuple-key
# allocation per lookup), edge-presence checks probe the packed-integer
# membership hash, and the deepest counting level folds a whole index row into
# the per-start Counter with one C-level ``update`` plus a small ``used``-set
# correction instead of one Python iteration per candidate.  Entities decode
# back to strings only when the SweepResult is assembled.


@dataclass(frozen=True)
class _CompiledSweepPlan:
    """A sweep plan bound to one CompiledKB's planes.

    ``steps`` entries are plain tuples for speed:

    * check step (both endpoints bound): ``(anchor_slot, None, check_slot,
      check_planes, base_ok)`` — the edge is present when the packed key hits
      any of ``check_planes`` (undirected first, mirroring the dict kernel)
      in the base presence set (``base_ok`` = the packing covers these
      planes) or when the overlay delta holds the plain tuple;
    * expansion step: ``(anchor_slot, free_slot, rows, row_sets, offsets,
      neighbors)`` — the plane's shared lazy row caches plus the raw arrays
      to materialise missing rows inline.

    ``count_kernel`` is the *generated* count evaluator (see
    :func:`_generate_count_kernel`): ``kernel(start_handle, per_start_dict)
    -> bindings_enumerated``.  ``impossible`` is set when the pattern
    references a label or a ``(label, orientation)`` plane with no edges at
    all: no complete binding can exist, so the sweep short-circuits to an
    empty result (identical to what the dict evaluator would enumerate its
    way to).
    """

    variable_names: tuple[str, ...]
    end_slot: int
    steps: tuple[tuple, ...]
    impossible: bool
    count_kernel: Any = None
    position_kernel: Any = None


#: CompiledKB -> {pattern: compiled plan}; entries die with the compiled view.
_COMPILED_SWEEP_PLANS: "WeakKeyDictionary[CompiledKB, dict]" = WeakKeyDictionary()

#: Generated kernel source -> compiled code object (shared across views).
_KERNEL_CODE_CACHE: dict[str, Any] = {}


def _generate_count_kernel(
    ckb: CompiledKB, steps: Sequence[_SweepStep], end_slot: int
) -> Any:
    """Specialise one sweep plan into straight-line nested loops.

    The generic evaluator interprets the plan step by step: one Python frame
    per frontier level, a step-table lookup per move, a ``used``-set probe
    per candidate.  Patterns are tiny (at most four edges at the paper's
    size limit), so instead we *generate the loop nest for this exact plan*:

    * binding slots become local variables ``b0, b1, ...``;
    * injectivity degenerates to chained integer comparisons against the
      bound slots (no set mutations on the hot path);
    * each expansion step indexes its plane's fully materialised row table;
    * edge checks probe the packed presence hash with literal plane offsets;
    * the deepest counting level folds a whole row into the group dict with
      one C-level ``_count_elements`` call, corrected by O(#bound-slots)
      membership tests against the row's frozenset — no per-candidate loop.

    The generated source depends only on the plan shape and the plane
    literals, so its code object is cached and shared; binding the runtime
    tables happens in a tiny generated factory.

    Against an :class:`~repro.kb.compiled.OverlayCompiledKB` the presence
    probes are widened at generation time: the packed base set is consulted
    only for handles/planes its packing covers, then the overlay's
    ``(src, dst, plane)`` delta set.  A plain compiled view generates the
    bare packed probe, so the base hot path is unchanged.
    """
    has_delta = bool(ckb.presence_delta)
    grew = len(ckb.names) != ckb.presence_n
    lines: list[str] = [
        "def _factory(tables, presence, n, stride, fold, ovp, dl):",
    ]
    expansion_ordinals: list[int] = []
    for index, step in enumerate(steps):
        if step.free_slot is not None:
            ordinal = len(expansion_ordinals)
            expansion_ordinals.append(index)
            lines.append(f"    r{ordinal}, s{ordinal} = tables[{ordinal}]")

    bound = [0]
    ordinal = 0
    num_steps = len(steps)

    def emit(index: int, indent: str) -> None:
        nonlocal ordinal
        if index == num_steps:
            # Only reached when the plan ends in check steps.
            lines.append(f"{indent}bindings += 1")
            lines.append(f"{indent}e = b{end_slot}")
            lines.append(f"{indent}per_start[e] = get(e, 0) + 1")
            return
        step = steps[index]
        if step.free_slot is None:
            planes = _check_planes_of(ckb, step)
            # Base probes are only valid for keys the packed set can express:
            # planes minted before the overlay, handles below presence_n.
            base_ok = max(planes) < ckb.presence_planes
            clauses: list[str] = []
            if base_ok:
                lines.append(
                    f"{indent}t = (b{step.anchor_slot} * n "
                    f"+ b{step.check_slot}) * stride"
                )
                base_probe = " or ".join(f"t + {plane} in presence" for plane in planes)
                if grew:
                    guard = f"b{step.anchor_slot} < n and b{step.check_slot} < n"
                    clauses.append(f"({guard} and ({base_probe}))")
                else:
                    clauses.append(
                        base_probe if not has_delta else f"({base_probe})"
                    )
            if has_delta or not base_ok:
                clauses.extend(
                    f"(b{step.anchor_slot}, b{step.check_slot}, {plane}) in ovp"
                    for plane in planes
                )
            lines.append(f"{indent}if {' or '.join(clauses)}:")
            emit(index + 1, indent + "    ")
            return
        this_ordinal = ordinal
        ordinal += 1
        free = step.free_slot
        anchor = step.anchor_slot
        if index == num_steps - 1:
            lines.append(f"{indent}row = r{this_ordinal}[b{anchor}]")
            lines.append(f"{indent}if row:")
            inner = indent + "    "
            corrections = [f"b{slot}" for slot in bound]
            if free == end_slot:
                # Adaptive leaf: tiny rows count inline (a fold call costs
                # more than two dict updates); larger rows fold in C.
                guard = " and ".join(f"c != {name}" for name in corrections)
                lines.append(f"{inner}if len(row) <= 6:")
                lines.append(f"{inner}    for c in row:")
                lines.append(f"{inner}        if {guard}:")
                lines.append(f"{inner}            bindings += 1")
                lines.append(f"{inner}            per_start[c] = get(c, 0) + 1")
                lines.append(f"{inner}else:")
                inner = inner + "    "
                lines.append(f"{inner}rs = s{this_ordinal}[b{anchor}]")
                lines.append(f"{inner}fold(per_start, row)")
                lines.append(f"{inner}extra = len(row)")
                for name in corrections:
                    lines.append(f"{inner}if {name} in rs:")
                    lines.append(f"{inner}    per_start[{name}] -= 1")
                    lines.append(f"{inner}    extra -= 1")
                lines.append(f"{inner}bindings += extra")
            else:
                deductions = "".join(f" - ({name} in rs)" for name in corrections)
                lines.append(f"{inner}rs = s{this_ordinal}[b{anchor}]")
                lines.append(f"{inner}valid = len(row){deductions}")
                lines.append(f"{inner}if valid:")
                lines.append(f"{inner}    bindings += valid")
                lines.append(f"{inner}    e = b{end_slot}")
                lines.append(f"{inner}    per_start[e] = get(e, 0) + valid")
            return
        guard = " and ".join(f"b{free} != b{slot}" for slot in bound)
        lines.append(f"{indent}for b{free} in r{this_ordinal}[b{anchor}]:")
        lines.append(f"{indent}    if {guard}:")
        bound.append(free)
        emit(index + 1, indent + "        ")
        bound.pop()

    # One-start kernel: used by the decoded sweeps.
    lines.append("    def kernel(b0, per_start):")
    lines.append("        get = per_start.get")
    lines.append("        bindings = 0")
    emit(0, "        ")
    lines.append("        return bindings")
    # Multi-start position tally: the same loop nest fused with the
    # qualifying-group comparison, so one generated frame sweeps a whole
    # start list (this is what the unpruned distributional ranking calls).
    bound = [0]
    ordinal = 0
    lines.append("    def position_many(starts, own_count, own_start, own_end):")
    lines.append("        position = 0")
    lines.append("        bindings = 0")
    lines.append("        for b0 in starts:")
    # Per-start cancellation checkpoint: resolved through the ambient
    # deadline at call time, a no-op context-variable read when unarmed.
    lines.append("            dl()")
    lines.append("            per_start = {}")
    lines.append("            get = per_start.get")
    emit(0, "            ")
    lines.append("            exclude = own_end if b0 == own_start else -1")
    lines.append("            for group_end, group_count in per_start.items():")
    lines.append(
        "                if group_count > own_count and group_end != b0 "
        "and group_end != exclude:"
    )
    lines.append("                    position += 1")
    lines.append("        return position, bindings")
    lines.append("    return kernel, position_many")
    source = "\n".join(lines)
    code = _KERNEL_CODE_CACHE.get(source)
    if code is None:
        code = _KERNEL_CODE_CACHE[source] = compile(source, "<sweep-kernel>", "exec")
    namespace: dict[str, Any] = {}
    exec(code, namespace)  # noqa: S102 - source generated above, no user input
    tables = []
    for position, index in enumerate(expansion_ordinals):
        step = steps[index]
        plane = (
            ckb.label_code[step.label] * 3 + ORIENT_CODE[step.orientation]
        )
        is_leaf = index == num_steps - 1
        tables.append(ckb.plane_tables(plane, with_sets=is_leaf))
    return namespace["_factory"](
        tables,
        ckb.presence,
        ckb.presence_n,
        ckb.presence_stride,
        _count_elements,
        ckb.presence_delta,
        _deadline_poll,
    )


def _check_planes_of(ckb: CompiledKB, step: _SweepStep) -> tuple[int, ...]:
    """Packed plane offsets a check step probes, in dict-kernel order."""
    plane = ckb.label_code[step.label] * 3
    if step.check_direction == "out":
        return (plane + 2, plane)
    return (plane + 2, plane, plane + 1)

try:
    # The C helper behind collections.Counter: counts an iterable into any
    # mapping via mapping.get, without Counter.update's per-call isinstance
    # dance.  Folding a whole index row costs one C call this way.
    from collections import _count_elements
except ImportError:  # pragma: no cover - non-CPython fallback

    def _count_elements(mapping: dict, iterable) -> None:
        get = mapping.get
        for element in iterable:
            mapping[element] = get(element, 0) + 1


def _compiled_sweep_plan(ckb: CompiledKB, pattern: ExplanationPattern) -> _CompiledSweepPlan:
    plans = _COMPILED_SWEEP_PLANS.get(ckb)
    if plans is None:
        plans = {}
        _COMPILED_SWEEP_PLANS[ckb] = plans
    plan = plans.get(pattern)
    if plan is not None:
        return plan
    base = _sweep_plan(pattern)
    label_code = ckb.label_code
    steps: list[tuple] = []
    impossible = False
    for step in base.steps:
        code = label_code.get(step.label)
        if code is None:
            impossible = True
            break
        plane = code * 3
        if step.free_slot is None:
            planes = _check_planes_of(ckb, step)
            steps.append(
                (
                    step.anchor_slot,
                    None,
                    step.check_slot,
                    planes,
                    max(planes) < ckb.presence_planes,
                )
            )
        else:
            rows, row_sets, offsets, neighbors = ckb.plane_buffers(
                plane + ORIENT_CODE[step.orientation]
            )
            if rows is None:
                impossible = True
                break
            steps.append(
                (step.anchor_slot, step.free_slot, rows, row_sets, offsets, neighbors)
            )
    count_kernel = position_kernel = None
    if not impossible:
        count_kernel, position_kernel = _generate_count_kernel(
            ckb, base.steps, base.end_slot
        )
    plan = _CompiledSweepPlan(
        variable_names=base.variable_names,
        end_slot=base.end_slot,
        steps=tuple(steps),
        impossible=impossible,
        count_kernel=count_kernel,
        position_kernel=position_kernel,
    )
    plans[pattern] = plan
    return plan


def _sweep_compiled(
    ckb: CompiledKB,
    pattern: ExplanationPattern,
    start_entities: Sequence[str] | None,
    collect_variable_sets: bool,
) -> SweepResult:
    """The integer-handle twin of the dict ``sweep_local_count_distributions``."""
    plan = _compiled_sweep_plan(ckb, pattern)
    variable_sets_h: dict[tuple[int, int], dict[str, set[int]]] | None = (
        {} if collect_variable_sets else None
    )
    names = ckb.names
    if plan.impossible:
        return SweepResult({}, {} if collect_variable_sets else None, 0)
    steps = plan.steps
    num_steps = len(steps)
    end_slot = plan.end_slot
    vnames = plan.variable_names
    presence = ckb.presence
    stride = ckb.presence_stride
    pn = ckb.presence_n
    delta = ckb.presence_delta
    n = len(names)
    counts_h: dict[int, dict[int, int]] = {}
    bindings_enumerated = 0
    binding: list[int] = [0] * len(vnames)
    used: set[int] = set()

    def run_full(index: int, per_start: dict[int, int], start: int) -> None:
        """General recursion: complete bindings, per-variable entity sets."""
        nonlocal bindings_enumerated
        if index == num_steps:
            bindings_enumerated += 1
            end = binding[end_slot]
            per_start[end] = per_start.get(end, 0) + 1
            group = variable_sets_h.get((start, end))
            if group is None:
                group = variable_sets_h[(start, end)] = {name: set() for name in vnames}
            for name, entity in zip(vnames, binding):
                group[name].add(entity)
            return
        step = steps[index]
        if step[1] is None:
            anchor = binding[step[0]]
            check = binding[step[2]]
            if step[4] and anchor < pn and check < pn:
                base = (anchor * pn + check) * stride
                for plane in step[3]:
                    if base + plane in presence:
                        run_full(index + 1, per_start, start)
                        return
            if delta:
                for plane in step[3]:
                    if (anchor, check, plane) in delta:
                        run_full(index + 1, per_start, start)
                        return
            return
        anchor_slot, free_slot, rows, _, offsets, neighbors = step
        anchor = binding[anchor_slot]
        row = rows[anchor]
        if row is None:
            offset = offsets[anchor]
            row = rows[anchor] = tuple(neighbors[offset : offsets[anchor + 1]])
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            run_full(index + 1, per_start, start)
            used.discard(candidate)

    if start_entities is None:
        start_iter: Sequence[int] = range(n)
    else:
        handles = ckb.handles
        start_iter = [
            handle
            for handle in (handles.get(start) for start in start_entities)
            if handle is not None
        ]
    seen: set[int] = set()
    count_kernel = plan.count_kernel
    for start_h in start_iter:
        _deadline_poll()
        # Each distinct start is evaluated once (duplicates must not double
        # their groups or the binding count), matching the dict evaluator.
        if start_h in seen:
            continue
        seen.add(start_h)
        if variable_sets_h is None:
            raw: dict[int, int] = {}
            bindings_enumerated += count_kernel(start_h, raw)
            per_start = {entity: count for entity, count in raw.items() if count > 0}
        else:
            binding[0] = start_h
            used.clear()
            used.add(start_h)
            per_start = {}
            run_full(0, per_start, start_h)
        if per_start:
            counts_h[start_h] = per_start

    counts = {
        names[start]: {names[end]: count for end, count in per.items()}
        for start, per in counts_h.items()
    }
    variable_sets = None
    if variable_sets_h is not None:
        variable_sets = {
            (names[start], names[end]): {
                variable: {names[entity] for entity in entities}
                for variable, entities in group.items()
            }
            for (start, end), group in variable_sets_h.items()
        }
    return SweepResult(counts, variable_sets, bindings_enumerated)


def sweep_position_count(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    start_entities: Sequence[str] | None,
    own_count: float,
    v_start: str,
    v_end: str,
) -> tuple[int, int]:
    """Count the (start, end) groups whose count exceeds ``own_count``.

    This is the inner loop of the unpruned distributional position ranking
    (and of the executor's sharded sweeps): run the batched sweep over
    ``start_entities`` and count groups above the pair's own count, skipping
    ``end == start`` groups and — for the pair's own start only — the pair's
    own end.  Returns ``(position, bindings_enumerated)``.

    On a :class:`~repro.kb.compiled.CompiledKB` the whole computation stays
    in handle space: group counts are never decoded to entity strings because
    the position is just a comparison tally.
    """
    if isinstance(kb, CompiledKB):
        plan = _compiled_sweep_plan(kb, pattern)
        if plan.impossible:
            return 0, 0
        handles = kb.handles
        if start_entities is None:
            start_iter: Sequence[int] = range(len(kb.names))
        else:
            # encode + dedup in one C-level pass (dict.fromkeys keeps the
            # first-occurrence order the dict evaluator iterates in)
            start_iter = dict.fromkeys(
                handle
                for handle in map(handles.get, start_entities)
                if handle is not None
            )
        return plan.position_kernel(
            start_iter,
            own_count,
            handles.get(v_start, -1),
            handles.get(v_end, -1),
        )
    sweep = sweep_local_count_distributions(kb, pattern, start_entities)
    position = 0
    for start_entity, per_end in sweep.counts.items():
        exclude_end = v_end if start_entity == v_start else None
        for end_entity, count in per_end.items():
            if end_entity == start_entity or end_entity == exclude_end:
                continue
            if count > own_count:
                position += 1
    return position, sweep.bindings_enumerated


def _count_qualifying_compiled(
    ckb: CompiledKB,
    pattern: ExplanationPattern,
    v_start: str,
    threshold: float,
    exclude_end: str | None,
    bound: int | None,
) -> tuple[int, bool, int]:
    """Integer-handle twin of the pruned position query.

    A faithful transliteration of the dict kernel — including the order in
    which candidate rows are walked and the points at which qualifying groups
    are folded — so the early-termination bound aborts after exactly the same
    amount of enumerated work and the returned counters agree bit for bit.
    """
    _deadline_poll()
    start_h = ckb.handles.get(v_start)
    if start_h is None:
        return (0, True, 0)
    plan = _compiled_sweep_plan(ckb, pattern)
    if plan.impossible:
        return (0, True, 0)
    steps = plan.steps
    num_steps = len(steps)
    last_step = num_steps - 1
    end_slot = plan.end_slot
    presence = ckb.presence
    stride = ckb.presence_stride
    pn = ckb.presence_n
    delta = ckb.presence_delta
    exclude_h = ckb.handles.get(exclude_end, -1) if exclude_end is not None else -1
    binding: list[int] = [0] * len(plan.variable_names)
    binding[0] = start_h
    used = {start_h}
    counts: dict[int, int] = {}
    qualifying: set[int] = set()
    bindings_enumerated = 0

    def group(end: int, additional: int) -> bool:
        """Fold ``additional`` bindings into ``end``'s group; True = abort."""
        nonlocal bindings_enumerated
        bindings_enumerated += additional
        if end == start_h or end == exclude_h:
            return False
        total = counts.get(end, 0) + additional
        counts[end] = total
        if total > threshold:
            qualifying.add(end)
            if bound is not None and len(qualifying) > bound:
                return True
        return False

    def rec(
        index: int,
        steps: tuple = steps,
        binding: list = binding,
        used: set = used,
        presence: set = presence,
        num_steps: int = num_steps,
        last_step: int = last_step,
        end_slot: int = end_slot,
        pn: int = pn,
        stride: int = stride,
        delta: frozenset = delta,
    ) -> bool:
        step = steps[index]
        while step[1] is None:
            anchor = binding[step[0]]
            check = binding[step[2]]
            hit = False
            if step[4] and anchor < pn and check < pn:
                base = (anchor * pn + check) * stride
                for plane in step[3]:
                    if base + plane in presence:
                        hit = True
                        break
            if not hit and delta:
                for plane in step[3]:
                    if (anchor, check, plane) in delta:
                        hit = True
                        break
            if not hit:
                return False
            index += 1
            if index == num_steps:
                return group(binding[end_slot], 1)
            step = steps[index]
        rows = step[2]
        anchor = binding[step[0]]
        row = rows[anchor]
        if row is None:
            offsets = step[4]
            offset = offsets[anchor]
            row = rows[anchor] = tuple(step[5][offset : offsets[anchor + 1]])
        if not row:
            return False
        free_slot = step[1]
        if index == last_step:
            row_sets = step[3]
            row_set = row_sets[anchor]
            if row_set is None:
                row_set = row_sets[anchor] = frozenset(row)
            if free_slot == end_slot:
                for candidate in row:
                    if candidate not in used and group(candidate, 1):
                        return True
                return False
            valid = len(row) - len(used & row_set)
            if valid:
                return group(binding[end_slot], valid)
            return False
        next_index = index + 1
        leaf = steps[next_index]
        if next_index == last_step and leaf[1] is not None:
            # Same two-deepest-level fusion as the batched sweep.
            (
                leaf_anchor_slot,
                leaf_free,
                leaf_rows,
                leaf_sets,
                leaf_offsets,
                leaf_neighbors,
            ) = leaf
            leaf_is_end = leaf_free == end_slot
            for candidate in row:
                if candidate in used:
                    continue
                binding[free_slot] = candidate
                used.add(candidate)
                stop = False
                leaf_anchor = binding[leaf_anchor_slot]
                leaf_row = leaf_rows[leaf_anchor]
                if leaf_row is None:
                    offset = leaf_offsets[leaf_anchor]
                    leaf_row = leaf_rows[leaf_anchor] = tuple(
                        leaf_neighbors[offset : leaf_offsets[leaf_anchor + 1]]
                    )
                if leaf_row:
                    leaf_set = leaf_sets[leaf_anchor]
                    if leaf_set is None:
                        leaf_set = leaf_sets[leaf_anchor] = frozenset(leaf_row)
                    if leaf_is_end:
                        for end in leaf_row:
                            if end not in used and group(end, 1):
                                stop = True
                                break
                    else:
                        valid = len(leaf_row) - len(used & leaf_set)
                        if valid:
                            stop = group(binding[end_slot], valid)
                used.discard(candidate)
                if stop:
                    return True
            return False
        for candidate in row:
            if candidate in used:
                continue
            binding[free_slot] = candidate
            used.add(candidate)
            stop = rec(next_index)
            used.discard(candidate)
            if stop:
                return True
        return False

    aborted = rec(0)
    return (len(qualifying), not aborted, bindings_enumerated)


def local_count_distribution(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    count_threshold: int | None = None,
    limit: int | None = None,
) -> dict[str, int]:
    """Instance counts of ``pattern`` grouped by end entity (start fixed).

    This is the direct evaluation of the Section 5.3.2 SQL query.  When
    ``count_threshold`` is given, only end entities whose count exceeds it are
    returned (the ``HAVING`` clause); when ``limit`` is additionally given the
    evaluation stops as soon as that many qualifying end entities are known —
    the pruning used by the position measure.

    Returns:
        Mapping from end entity to its instance count.  With ``limit`` set the
        returned counts of qualifying entities are lower bounds (evaluation
        stopped early), which is all the pruned position computation needs.
    """
    counts: dict[str, int] = {}
    qualifying: set[str] = set()
    for binding in iter_pattern_bindings(kb, pattern, {START: v_start}):
        end_entity = binding[END]
        if end_entity == v_start:
            continue
        counts[end_entity] = counts.get(end_entity, 0) + 1
        if count_threshold is not None and counts[end_entity] > count_threshold:
            qualifying.add(end_entity)
            if limit is not None and len(qualifying) >= limit:
                break
    if count_threshold is None:
        return counts
    return {entity: counts[entity] for entity in qualifying}
