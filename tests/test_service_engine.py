"""Tests for the concurrent, caching explanation engine."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import Rex
from repro.datasets.paper_example import PAPER_PAIRS, paper_example_kb
from repro.errors import RexError, UnknownEntityError
from repro.measures.base import Measure
from repro.service.engine import ExplanationEngine


@pytest.fixture()
def engine():
    """A fresh engine over a private copy of the paper KB (mutation tests)."""
    return ExplanationEngine(paper_example_kb(), size_limit=4)


def _counter(engine: ExplanationEngine, name: str) -> int:
    return engine.metrics.counter(name).value


class SlowSizeMeasure(Measure):
    """A measure that blocks in ``raw_value`` until the test releases it.

    Scoring happens inside the leader's enumeration+ranking computation, so
    holding this gate open keeps the leader in flight while the hammer
    threads pile onto the same key.
    """

    name = "slow-size"

    def __init__(self) -> None:
        self.gate = threading.Event()
        self.entered = threading.Event()

    def raw_value(self, kb, explanation, v_start, v_end) -> float:
        self.entered.set()
        assert self.gate.wait(timeout=30), "test never released the gate"
        return -float(explanation.size)


class TestExplainBasics:
    def test_matches_the_facade(self, engine, paper_kb):
        facade = Rex(paper_kb, size_limit=4)
        expected = facade.explain("tom_cruise", "nicole_kidman", k=3)
        outcome = engine.explain("tom_cruise", "nicole_kidman", k=3)
        assert list(outcome.ranked) == expected
        assert outcome.cached is False
        assert outcome.kb_version == engine.kb_version

    def test_unknown_entity_raises(self, engine):
        with pytest.raises(UnknownEntityError):
            engine.explain("nobody", "brad_pitt")

    def test_unknown_measure_raises_and_counts(self, engine):
        with pytest.raises(RexError):
            engine.explain("brad_pitt", "angelina_jolie", measure="bogus")
        assert _counter(engine, "engine.errors") == 1

    def test_invalid_k_rejected_at_facade_boundary(self, engine):
        with pytest.raises(RexError, match="positive integer"):
            engine.explain("brad_pitt", "angelina_jolie", k=0)

    def test_batch_mixes_answers_and_errors(self, engine):
        results = engine.explain_batch(
            [
                {"start": "tom_cruise", "end": "nicole_kidman", "k": 2},
                {"start": "tom_cruise"},  # missing 'end'
                {"start": "tom_cruise", "end": "nicole_kidman", "measure": "bogus"},
            ]
        )
        assert len(results) == 3
        assert not isinstance(results[0], RexError)
        assert isinstance(results[1], RexError)
        assert isinstance(results[2], RexError)


class TestCaching:
    def test_cache_hit_skips_enumeration(self, engine):
        """The acceptance criterion: hits provably never re-enumerate."""
        first = engine.explain("brad_pitt", "angelina_jolie", k=5)
        assert _counter(engine, "engine.enumerations") == 1
        for _ in range(10):
            outcome = engine.explain("brad_pitt", "angelina_jolie", k=5)
            assert outcome.cached is True
            assert outcome.ranked is first.ranked  # the very same tuple
        assert _counter(engine, "engine.enumerations") == 1
        assert _counter(engine, "engine.cache_hits") == 10

    def test_different_parameters_are_different_entries(self, engine):
        engine.explain("brad_pitt", "angelina_jolie", k=3)
        engine.explain("brad_pitt", "angelina_jolie", k=5)
        engine.explain("brad_pitt", "angelina_jolie", k=3, measure="count")
        assert _counter(engine, "engine.enumerations") == 3

    def test_kb_mutation_invalidates(self, engine):
        engine.explain("brad_pitt", "angelina_jolie", k=3)
        version_before = engine.kb_version
        summary = engine.add_edges(
            [{"source": "brad_pitt", "target": "angelina_jolie", "label": "award_won"}]
        )
        assert summary["added"] == 1
        assert summary["kb_version"] > version_before
        assert summary["cache_purged"] == 1
        outcome = engine.explain("brad_pitt", "angelina_jolie", k=3)
        assert outcome.cached is False
        assert _counter(engine, "engine.enumerations") == 2

    def test_new_edge_is_visible_after_update(self, engine):
        engine.add_edges(
            [{"source": "connie_nielsen", "target": "brad_pitt", "label": "spouse"}]
        )
        outcome = engine.explain("brad_pitt", "connie_nielsen", k=3)
        labels = {
            edge.label
            for entry in outcome.ranked
            for edge in entry.explanation.pattern.edges
        }
        assert "spouse" in labels

    def test_add_edges_rejects_incomplete_edge(self, engine):
        with pytest.raises(RexError, match="label"):
            engine.add_edges([{"source": "a", "target": "b"}])

    def test_rejected_batch_is_atomic(self, engine):
        """A bad edge anywhere in the batch must leave the KB untouched."""
        version = engine.kb_version
        edges_before = engine.kb.num_edges
        with pytest.raises(RexError, match="self-loop"):
            engine.add_edges(
                [
                    {"source": "x", "target": "y", "label": "knows"},  # valid
                    {"source": "z", "target": "z", "label": "knows"},  # self-loop
                ]
            )
        assert engine.kb_version == version
        assert engine.kb.num_edges == edges_before
        assert not engine.kb.has_entity("x")

    def test_batch_rejects_non_mapping_items_inline(self, engine):
        results = engine.explain_batch(["not-an-object"])
        assert isinstance(results[0], RexError)

    def test_batch_tolerates_unhashable_parameters_inline(self, engine):
        """An unhashable k (would break the cache key) must stay a per-item
        error, not a TypeError that kills the sibling requests."""
        results = engine.explain_batch(
            [
                {"start": "tom_cruise", "end": "nicole_kidman", "k": [5]},
                {"start": "tom_cruise", "end": "nicole_kidman", "k": 2},
            ]
        )
        assert isinstance(results[0], RexError)
        assert not isinstance(results[1], RexError)

    @pytest.mark.parametrize(
        "request_kwargs",
        [
            {"v_start": ["brad_pitt"], "v_end": "angelina_jolie"},
            {"v_start": "brad_pitt", "v_end": "angelina_jolie", "measure": ["size"]},
            {"v_start": "brad_pitt", "v_end": "angelina_jolie", "size_limit": "4"},
        ],
    )
    def test_non_string_request_types_raise_rex_error(self, engine, request_kwargs):
        with pytest.raises(RexError):
            engine.explain(**request_kwargs)

    def test_rejected_batch_with_non_string_field_is_atomic(self, engine):
        edges_before = engine.kb.num_edges
        with pytest.raises(RexError, match="non-empty"):
            engine.add_edges(
                [
                    {"source": "zz1", "target": "zz2", "label": "x"},
                    {"source": 1, "target": 2, "label": "y"},
                ]
            )
        assert engine.kb.num_edges == edges_before
        assert not engine.kb.has_entity("zz1")

    def test_directed_must_be_a_boolean(self, engine):
        with pytest.raises(RexError, match="boolean"):
            engine.add_edges(
                [
                    {
                        "source": "aa",
                        "target": "bb",
                        "label": "rel",
                        "directed": "undirected",
                    }
                ]
            )
        assert not engine.kb.has_entity("aa")

    def test_boolean_directed_is_respected(self, engine):
        engine.add_edges(
            [{"source": "aa", "target": "bb", "label": "rel", "directed": False}]
        )
        (edge,) = [e for e in engine.kb.edges() if e.label == "rel"]
        assert edge.directed is False

    def test_added_count_excludes_duplicates(self, engine):
        """'added' reports actual new edges, not batch length."""
        first = engine.add_edges([{"source": "aa", "target": "bb", "label": "rel"}])
        assert first["added"] == 1
        second = engine.add_edges(
            [
                {"source": "aa", "target": "bb", "label": "rel"},  # duplicate
                {"source": "aa", "target": "cc", "label": "rel"},  # new
            ]
        )
        assert second["added"] == 1
        assert second["kb_version"] > first["kb_version"]

    def test_writer_waits_for_inflight_enumeration(self, engine):
        """add_edges must block while an enumeration holds the KB read lock."""
        from concurrent.futures import ThreadPoolExecutor

        measure = SlowSizeMeasure()
        with ThreadPoolExecutor(max_workers=2) as pool:
            reader = pool.submit(
                engine.explain, "brad_pitt", "angelina_jolie", measure, 3
            )
            assert measure.entered.wait(timeout=30)
            writer = pool.submit(
                engine.add_edges,
                [{"source": "p", "target": "q", "label": "knows"}],
            )
            # the reader is parked inside the computation with the read lock
            # held, so the write must not complete yet
            with pytest.raises(TimeoutError):
                writer.result(timeout=0.2)
            measure.gate.set()
            reader.result(timeout=30)
            summary = writer.result(timeout=30)
        assert summary["added"] == 1
        assert engine.kb.has_entity("p")
        assert engine._inflight == {}, "in-flight slots must not leak"


class TestWarmup:
    def test_warmup_precomputes_paper_pairs(self, engine):
        summary = engine.warmup(PAPER_PAIRS, k=5)
        assert summary["warmed"] == len(PAPER_PAIRS)
        assert summary["skipped"] == 0
        enumerations = _counter(engine, "engine.enumerations")
        for start, end in PAPER_PAIRS:
            assert engine.explain(start, end, k=5).cached is True
        assert _counter(engine, "engine.enumerations") == enumerations

    def test_warmup_skips_unknown_pairs(self, engine):
        summary = engine.warmup([("brad_pitt", "no_such_entity")], k=5)
        assert summary == {
            "warmed": 0,
            "skipped": 1,
            "restarts": 0,
            "elapsed_s": summary["elapsed_s"],
        }


class TestSingleFlight:
    def test_hammer_coalesces_concurrent_identical_requests(self, engine):
        """N threads, one slow computation: exactly one enumeration runs and
        the other callers are recorded as coalesced by the metrics counters."""
        measure = SlowSizeMeasure()
        hammers = 8
        outcomes = []

        def request():
            return engine.explain(
                "brad_pitt", "angelina_jolie", measure=measure, k=3
            )

        with ThreadPoolExecutor(max_workers=hammers) as pool:
            leader = pool.submit(request)
            assert measure.entered.wait(timeout=30)
            # the leader is now blocked mid-computation; pile on
            followers = [pool.submit(request) for _ in range(hammers - 1)]
            # wait until every follower is parked on the in-flight slot
            deadline = threading.Event()
            for _ in range(500):
                if engine.metrics.counter("engine.coalesced").value == hammers - 1:
                    break
                deadline.wait(0.01)
            measure.gate.set()
            outcomes.append(leader.result(timeout=30))
            outcomes.extend(f.result(timeout=30) for f in followers)

        assert _counter(engine, "engine.enumerations") == 1
        assert _counter(engine, "engine.coalesced") == hammers - 1
        reference = outcomes[0].ranked
        assert all(outcome.ranked == reference for outcome in outcomes)
        coalesced_flags = [outcome.coalesced for outcome in outcomes]
        assert coalesced_flags.count(True) == hammers - 1
        assert engine._inflight == {}, "in-flight slots must not leak"

    def test_leader_error_propagates_to_waiters(self, engine):
        class ExplodingMeasure(SlowSizeMeasure):
            name = "exploding"

            def raw_value(self, kb, explanation, v_start, v_end) -> float:
                self.entered.set()
                assert self.gate.wait(timeout=30)
                raise RexError("boom")

        measure = ExplodingMeasure()
        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(
                engine.explain, "brad_pitt", "angelina_jolie", measure, 3
            )
            assert measure.entered.wait(timeout=30)
            follower = pool.submit(
                engine.explain, "brad_pitt", "angelina_jolie", measure, 3
            )
            for _ in range(500):
                if engine.metrics.counter("engine.coalesced").value == 1:
                    break
                threading.Event().wait(0.01)
            measure.gate.set()
            with pytest.raises(RexError, match="boom"):
                leader.result(timeout=30)
            with pytest.raises(RexError, match="boom"):
                follower.result(timeout=30)
        # a failed computation must not leave a poisoned in-flight slot
        outcome = engine.explain("brad_pitt", "angelina_jolie", k=3)
        assert outcome.ranked

    def test_followers_get_their_own_exception_copy(self, engine):
        """Waiters must not raise the leader's exception instance (its
        traceback would be rebound concurrently across threads)."""
        import copy
        from concurrent.futures import ThreadPoolExecutor

        class ExplodingMeasure(SlowSizeMeasure):
            name = "exploding-copy"

            def raw_value(self, kb, explanation, v_start, v_end) -> float:
                self.entered.set()
                assert self.gate.wait(timeout=30)
                raise RexError("boom")

        measure = ExplodingMeasure()
        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(
                engine.explain, "brad_pitt", "angelina_jolie", measure, 3
            )
            assert measure.entered.wait(timeout=30)
            follower = pool.submit(
                engine.explain, "brad_pitt", "angelina_jolie", measure, 3
            )
            for _ in range(500):
                if engine.metrics.counter("engine.coalesced").value == 1:
                    break
                threading.Event().wait(0.01)
            coalesced = engine.metrics.counter("engine.coalesced").value
            measure.gate.set()
            leader_error = leader.exception(timeout=30)
            follower_error = follower.exception(timeout=30)
        assert isinstance(leader_error, RexError)
        assert isinstance(follower_error, RexError)
        if coalesced:  # the follower actually joined the leader's flight
            assert follower_error is not leader_error
            assert follower_error.__cause__ is leader_error

    def test_unknown_entity_error_copies_cleanly(self):
        """copy/pickle must rebuild from the constructor argument, not the
        formatted message (no double-wrapping)."""
        import copy

        original = UnknownEntityError("ghost")
        clone = copy.copy(original)
        assert type(clone) is UnknownEntityError
        assert clone.entity == "ghost"
        assert str(clone) == str(original)


class TestDeadLeaderRecovery:
    """Regression: a leader that dies without publishing must not strand
    its followers on an event nobody will ever set."""

    PAIR = ("brad_pitt", "angelina_jolie")

    def _plant_flight(self, engine, leader_thread):
        """Register an in-flight slot for PAIR/k=3 exactly as explain would."""
        from repro.service.engine import _InFlight

        from repro.service.engine import DEFAULT_MEASURE

        measure_obj, effective_limit = engine._validate_request(
            *self.PAIR, DEFAULT_MEASURE, 3, None
        )
        key = (*self.PAIR, measure_obj.name, 3, effective_limit)
        flight_key = (engine.kb_version, *key)
        flight = _InFlight()
        flight.leader_thread = leader_thread
        engine._inflight[flight_key] = flight
        return flight, flight_key

    def test_follower_takes_over_a_dead_leader(self, engine):
        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        assert not dead.is_alive()
        flight, _ = self._plant_flight(engine, dead)

        # this call coalesces onto the planted flight, detects the dead
        # leader within one wait slice, and computes the answer itself
        outcome = engine.explain(*self.PAIR, k=3)
        assert outcome.ranked
        assert outcome.coalesced is True
        assert _counter(engine, "engine.leader_takeovers") == 1
        assert flight.event.is_set()
        assert flight.outcome == outcome.ranked
        assert engine._inflight == {}, "the dead flight's slot must be freed"

    def test_exactly_one_follower_takes_over(self, engine):
        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        self._plant_flight(engine, dead)

        followers = 4
        with ThreadPoolExecutor(max_workers=followers) as pool:
            futures = [
                pool.submit(engine.explain, *self.PAIR, k=3)
                for _ in range(followers)
            ]
            outcomes = [f.result(timeout=30) for f in futures]
        reference = outcomes[0].ranked
        assert all(outcome.ranked == reference for outcome in outcomes)
        # one follower recomputed, the rest consumed its published result
        assert _counter(engine, "engine.leader_takeovers") == 1
        assert _counter(engine, "engine.enumerations") == 1
        assert engine._inflight == {}

    def test_follower_recomputes_when_leader_died_of_its_own_deadline(
        self, engine
    ):
        from repro.errors import DeadlineExceeded

        # the main thread plays a live leader so the follower keeps waiting
        flight, flight_key = self._plant_flight(
            engine, threading.current_thread()
        )
        with ThreadPoolExecutor(max_workers=1) as pool:
            follower = pool.submit(engine.explain, *self.PAIR, k=3)
            for _ in range(500):
                if _counter(engine, "engine.coalesced") == 1:
                    break
                threading.Event().wait(0.01)
            # leader publishes a deadline failure — but that 504 describes
            # the *leader's* budget; the follower has no deadline at all
            flight.error = DeadlineExceeded(1e-9)
            engine._inflight.pop(flight_key, None)
            flight.event.set()
            outcome = follower.result(timeout=30)
        assert outcome.ranked
        assert outcome.coalesced is True
        assert _counter(engine, "engine.leader_takeovers") == 1

    def test_follower_with_spent_budget_gives_up_without_waiting(self, engine):
        from repro.errors import DeadlineExceeded

        flight, flight_key = self._plant_flight(
            engine, threading.current_thread()
        )
        try:
            with pytest.raises(DeadlineExceeded):
                engine.explain(*self.PAIR, k=3, deadline_s=1e-9)
        finally:
            engine._inflight.pop(flight_key, None)
            flight.event.set()
        assert _counter(engine, "engine.deadline_exceeded") == 1


class TestStats:
    def test_stats_shape(self, engine):
        engine.explain("brad_pitt", "angelina_jolie", k=2)
        stats = engine.stats()
        assert stats["kb"]["version"] == engine.kb_version
        assert stats["cache"]["size"] == 1
        assert stats["counters"]["engine.requests"] == 1
        assert stats["histograms"]["engine.explain_latency"]["count"] == 1
