"""A miniature in-memory relational engine over the edge relation.

Section 5.3.2 of the paper computes local distributional measures by running a
SQL query over the relation ``R(eid1, eid2, rel)`` that stores every primary
relationship, and prunes the computation by appending a ``LIMIT`` clause.  The
paper assumes a commercial RDBMS; this module supplies the minimum relational
machinery needed to reproduce that experiment offline:

* :class:`Relation` — a named, in-memory bag of tuples with column names;
* select / project / natural and equi hash-joins / group-by with ``HAVING``;
* early-terminating ``LIMIT`` evaluation used by the pruned position measure.

The engine is intentionally tiny — it is a substrate, not a contribution — but
it is exercised directly by the distributional measures and their benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import RelationalError
from repro.kb.graph import KnowledgeBase

__all__ = ["Row", "Relation", "edge_relation", "GroupCount"]

Row = tuple


class Relation:
    """A named collection of equal-width tuples with column names.

    Example:
        >>> relation = Relation("R", ("eid1", "eid2", "rel"),
        ...                     [("m", "a", "starring"), ("m", "b", "starring")])
        >>> relation.select(lambda row: row[2] == "starring").num_rows
        2
    """

    def __init__(self, name: str, columns: Sequence[str], rows: Iterable[Row] = ()) -> None:
        if len(set(columns)) != len(columns):
            raise RelationalError(f"duplicate column names in relation {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self._rows: list[Row] = []
        for row in rows:
            self.insert(row)

    # -- basic operations ----------------------------------------------------

    def insert(self, row: Row) -> None:
        """Append a tuple; its width must match the schema."""
        if len(row) != len(self.columns):
            raise RelationalError(
                f"row width {len(row)} does not match schema of {self.name!r} "
                f"({len(self.columns)} columns)"
            )
        self._rows.append(tuple(row))

    @property
    def rows(self) -> list[Row]:
        return list(self._rows)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def column_index(self, column: str) -> int:
        """Index of ``column`` in the schema."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise RelationalError(
                f"relation {self.name!r} has no column {column!r}"
            ) from None

    # -- algebra -------------------------------------------------------------

    def select(self, predicate: Callable[[Row], bool], name: str | None = None) -> "Relation":
        """Rows satisfying ``predicate``."""
        return Relation(
            name or f"select({self.name})",
            self.columns,
            (row for row in self._rows if predicate(row)),
        )

    def select_eq(self, column: str, value: object, name: str | None = None) -> "Relation":
        """Rows whose ``column`` equals ``value`` (uses a positional lookup)."""
        index = self.column_index(column)
        return Relation(
            name or f"select({self.name})",
            self.columns,
            (row for row in self._rows if row[index] == value),
        )

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Keep only ``columns`` (duplicates retained, bag semantics)."""
        indexes = [self.column_index(column) for column in columns]
        return Relation(
            name or f"project({self.name})",
            columns,
            (tuple(row[index] for index in indexes) for row in self._rows),
        )

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Relation":
        """Rename columns through ``mapping`` (unmentioned columns unchanged)."""
        columns = tuple(mapping.get(column, column) for column in self.columns)
        return Relation(name or self.name, columns, self._rows)

    def join(
        self,
        other: "Relation",
        left_column: str,
        right_column: str,
        name: str | None = None,
    ) -> "Relation":
        """Equi hash-join on ``self.left_column == other.right_column``.

        The result schema concatenates both schemas with the other relation's
        columns prefixed by its name to avoid collisions.
        """
        left_index = self.column_index(left_column)
        right_index = other.column_index(right_column)
        buckets: dict[object, list[Row]] = {}
        for row in other:
            buckets.setdefault(row[right_index], []).append(row)
        prefixed = tuple(f"{other.name}.{column}" for column in other.columns)
        joined = Relation(name or f"join({self.name},{other.name})", self.columns + prefixed)
        for row in self._rows:
            for match in buckets.get(row[left_index], ()):
                joined.insert(row + match)
        return joined

    def distinct(self, name: str | None = None) -> "Relation":
        """Remove duplicate tuples (preserving first-seen order)."""
        seen: dict[Row, None] = {}
        for row in self._rows:
            seen.setdefault(row, None)
        return Relation(name or f"distinct({self.name})", self.columns, seen.keys())

    def group_count(self, group_columns: Sequence[str]) -> list["GroupCount"]:
        """``GROUP BY group_columns`` with ``count(*)`` per group."""
        indexes = [self.column_index(column) for column in group_columns]
        counts: dict[tuple, int] = {}
        for row in self._rows:
            key = tuple(row[index] for index in indexes)
            counts[key] = counts.get(key, 0) + 1
        return [GroupCount(key, count) for key, count in counts.items()]

    def group_count_having(
        self,
        group_columns: Sequence[str],
        minimum_exclusive: int,
        limit: int | None = None,
    ) -> list["GroupCount"]:
        """``GROUP BY ... HAVING count(*) > minimum_exclusive [LIMIT limit]``.

        The ``limit`` mirrors the pruning of Section 5.3.2: the caller only
        needs to know whether more than ``limit`` groups exceed the bound, so
        evaluation stops as soon as that many qualifying groups are found.
        """
        qualifying: list[GroupCount] = []
        for group in self.group_count(group_columns):
            if group.count > minimum_exclusive:
                qualifying.append(group)
                if limit is not None and len(qualifying) >= limit:
                    break
        return qualifying

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, columns={self.columns}, rows={len(self._rows)})"


@dataclass(frozen=True)
class GroupCount:
    """One group of a ``GROUP BY`` together with its ``count(*)``."""

    key: tuple
    count: int


def edge_relation(kb: KnowledgeBase, name: str = "R") -> Relation:
    """Materialise the paper's edge relation ``R(eid1, eid2, rel)``.

    Directed edges produce a single tuple ``(source, target, rel)``.
    Undirected edges produce both orientations so that SQL-style joins can
    traverse them in either direction, mirroring how an RDBMS deployment of
    the paper's schema would store symmetric relations.
    """
    relation = Relation(name, ("eid1", "eid2", "rel"))
    for edge in kb.edges():
        relation.insert((edge.source, edge.target, edge.label))
        if not edge.directed:
            relation.insert((edge.target, edge.source, edge.label))
    return relation
