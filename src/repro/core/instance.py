"""Explanation instances (Definition 2 of the paper).

An explanation instance of a pattern ``p`` with respect to a knowledge base
``G`` and a target entity pair ``(v_start, v_end)`` is a mapping from the
pattern's variables to entities of ``G`` such that

* the start variable maps to ``v_start`` and the end variable to ``v_end``,
* every non-target variable maps to an entity other than the two targets, and
* every pattern edge is witnessed by a knowledge-base edge with the same
  label (and direction, for directed relations).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.pattern import END, START, ExplanationPattern
from repro.errors import InstanceError
from repro.kb.graph import KnowledgeBase

__all__ = ["ExplanationInstance", "validate_instance"]


class ExplanationInstance:
    """An immutable variable-to-entity mapping for a pattern.

    The mapping is stored as a sorted tuple of ``(variable, entity)`` pairs so
    instances are hashable and comparable, which the enumeration algorithms
    rely on for de-duplication.
    """

    __slots__ = ("_items", "_mapping")

    def __init__(self, mapping: Mapping[str, str]) -> None:
        if START not in mapping or END not in mapping:
            raise InstanceError(
                "an instance must bind the start and end variables"
            )
        self._items = tuple(sorted(mapping.items()))
        self._mapping = dict(self._items)

    # -- accessors ---------------------------------------------------------

    @property
    def mapping(self) -> dict[str, str]:
        """A fresh dict copy of the variable-to-entity mapping."""
        return dict(self._mapping)

    @property
    def start_entity(self) -> str:
        return self._mapping[START]

    @property
    def end_entity(self) -> str:
        return self._mapping[END]

    def __getitem__(self, variable: str) -> str:
        try:
            return self._mapping[variable]
        except KeyError:
            raise InstanceError(f"variable {variable!r} is not bound") from None

    def get(self, variable: str) -> str | None:
        """Entity bound to ``variable`` or ``None`` when unbound."""
        return self._mapping.get(variable)

    def __contains__(self, variable: object) -> bool:
        return variable in self._mapping

    def variables(self) -> frozenset[str]:
        """The set of bound variables."""
        return frozenset(self._mapping)

    def is_injective(self) -> bool:
        """Whether distinct variables are bound to distinct entities.

        Definition 2 describes instances as *subgraphs* of the knowledge base,
        so REX instances are injective; the enumeration algorithms rely on
        this (a non-injective mapping is not covered by simple-path instances).
        """
        return len(set(self._mapping.values())) == len(self._mapping)

    def entities(self) -> frozenset[str]:
        """The set of entities used by the instance."""
        return frozenset(self._mapping.values())

    def items(self) -> tuple[tuple[str, str], ...]:
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    # -- operations --------------------------------------------------------

    def agrees_with(self, other: "ExplanationInstance", variables: Iterable[str]) -> bool:
        """Whether both instances bind each of ``variables`` to the same entity.

        Variables unbound in either instance are ignored; the merge step of
        PathUnion only checks the matched (shared) variables.
        """
        for variable in variables:
            mine = self._mapping.get(variable)
            theirs = other._mapping.get(variable)
            if mine is not None and theirs is not None and mine != theirs:
                return False
        return True

    def merged_with(self, other: "ExplanationInstance") -> "ExplanationInstance":
        """Union of two instances; conflicting bindings raise ``InstanceError``."""
        combined = dict(self._mapping)
        for variable, entity in other._mapping.items():
            existing = combined.get(variable)
            if existing is not None and existing != entity:
                raise InstanceError(
                    f"conflicting binding for {variable!r}: {existing!r} vs {entity!r}"
                )
            combined[variable] = entity
        return ExplanationInstance(combined)

    def renamed(self, mapping: Mapping[str, str]) -> "ExplanationInstance":
        """Rename variables of the instance through ``mapping``."""
        renamed: dict[str, str] = {}
        for variable, entity in self._mapping.items():
            new_variable = mapping.get(variable, variable)
            if new_variable in renamed and renamed[new_variable] != entity:
                raise InstanceError(
                    f"renaming collapses {new_variable!r} onto different entities"
                )
            renamed[new_variable] = entity
        return ExplanationInstance(renamed)

    def restricted_to(self, variables: Iterable[str]) -> "ExplanationInstance":
        """Projection of the instance onto a subset of variables.

        The start and end variables are always retained.
        """
        keep = set(variables) | {START, END}
        return ExplanationInstance(
            {variable: entity for variable, entity in self._mapping.items() if variable in keep}
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExplanationInstance):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        bindings = ", ".join(f"{variable}={entity}" for variable, entity in self._items)
        return f"ExplanationInstance({bindings})"


def validate_instance(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    instance: ExplanationInstance,
    v_start: str,
    v_end: str,
) -> bool:
    """Check that ``instance`` satisfies Definition 2 for ``pattern``.

    Returns ``True`` when the instance binds exactly the pattern's variables,
    pins the targets correctly, keeps non-target variables away from the
    target entities, maps distinct variables to distinct entities (instances
    are subgraphs) and witnesses every pattern edge in the knowledge base.
    """
    if instance.variables() != pattern.variables:
        return False
    if instance[START] != v_start or instance[END] != v_end:
        return False
    if not instance.is_injective():
        return False
    for variable in pattern.non_target_variables:
        if instance[variable] in (v_start, v_end):
            return False
    for edge in pattern.edges:
        source = instance[edge.source]
        target = instance[edge.target]
        direction = "out" if edge.directed else "any"
        if not kb.has_edge(source, target, edge.label, direction):
            return False
    return True
