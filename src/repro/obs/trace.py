"""Context-local request tracing with named phase spans.

The serving stack needs to answer "where did this request's latency go?"
without slowing down the requests nobody is looking at.  The design here is
built around that asymmetry:

* a :class:`Trace` is a per-request tree of named phase spans (``cache_lookup``,
  ``kb_compile``, ``path_enum``, ``matcher``, ``union_merge``, ``ranking_sweep``,
  ``checkpoint_io``, ``store_commit``, ...) held in a context variable, so the
  instrumented layers never pass a handle around;
* the module-level :func:`span` hook is what the hot paths call.  With no
  active trace it returns a shared no-op singleton — one ``ContextVar`` read
  and zero allocation — so enumeration and ranking stay byte-identical *and*
  effectively free when tracing is off;
* repeated spans with the same name under the same parent (e.g. one
  ``matcher`` run per candidate explanation) are **aggregated** into a single
  node that accumulates total duration and a call count, which keeps traces
  bounded and phase trees readable;
* a :class:`Tracer` decides *which* requests get a trace (deterministic
  1-in-N sampling, ``REX_TRACE_SAMPLE``), keeps the finished traces in a
  bounded ring buffer (``REX_TRACE_BUFFER``) for ``GET /debug/traces``, and
  feeds per-phase latency histograms into the metrics registry;
* worker processes build their own :class:`Trace` under the coordinator's
  trace ID, :meth:`Trace.export_spans` ships the spans back as plain tuples,
  and :meth:`Trace.graft` rebases them under the coordinator's dispatch span
  — ``perf_counter`` offsets are not comparable across processes, so exports
  carry the worker's wall-clock start and the graft rebases against it.

Everything here is pure stdlib and imports nothing from the rest of
:mod:`repro`, so any layer (kb, enumeration, ranking, service) can hook spans
without import cycles.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, NamedTuple

__all__ = [
    "DEFAULT_BUFFER_CAPACITY",
    "DEFAULT_MAX_SPANS",
    "DEFAULT_SAMPLE_RATE",
    "PhaseTiming",
    "Span",
    "Trace",
    "Tracer",
    "activate_trace",
    "current_trace",
    "current_trace_id",
    "deactivate_trace",
    "format_trace",
    "span",
]

#: Fraction of requests that get a trace when the caller does not override it.
DEFAULT_SAMPLE_RATE = 0.01
#: Finished traces kept for ``GET /debug/traces`` (``REX_TRACE_BUFFER``).
DEFAULT_BUFFER_CAPACITY = 256
#: Span nodes per trace before further spans are counted as dropped.
DEFAULT_MAX_SPANS = 512

_ACTIVE: ContextVar["Trace | None"] = ContextVar("rex_active_trace", default=None)


class _NoopSpan:
    """Shared do-nothing span, returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **meta: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def current_trace() -> "Trace | None":
    """The trace active in this context, or ``None``."""
    return _ACTIVE.get()


def current_trace_id() -> str | None:
    """The active trace's ID, or ``None`` when nothing is being traced."""
    trace = _ACTIVE.get()
    return trace.trace_id if trace is not None else None


def span(name: str) -> "Span | _NoopSpan":
    """A phase span under the active trace — the hook the hot paths call.

    Usage::

        with span("path_enum"):
            ...

    With no active trace this is one context-variable read and a shared
    no-op object; the instrumented code path is identical either way.
    """
    trace = _ACTIVE.get()
    if trace is None:
        return _NOOP_SPAN
    return trace.span(name)


def activate_trace(trace: "Trace") -> object:
    """Make ``trace`` the context's active trace; returns a reset token."""
    return _ACTIVE.set(trace)


def deactivate_trace(token: object) -> None:
    """Undo :func:`activate_trace` with the token it returned."""
    _ACTIVE.reset(token)  # type: ignore[arg-type]


class PhaseTiming(NamedTuple):
    """One row of a per-phase breakdown: total seconds and call count."""

    name: str
    seconds: float
    count: int


class Span:
    """One named node of a trace, usable as a (re-entrant) context manager.

    ``start_s``/``duration_s`` are offsets/durations in seconds relative to
    the owning trace's start.  Re-entering the same aggregated span adds to
    ``duration_s`` and ``count`` instead of growing the trace.
    """

    __slots__ = ("name", "index", "parent", "start_s", "duration_s", "count", "meta", "_trace", "_t0")

    def __init__(self, name: str, index: int, parent: int, trace: "Trace") -> None:
        self.name = name
        self.index = index
        self.parent = parent
        self.start_s: float | None = None
        self.duration_s = 0.0
        self.count = 0
        self.meta: dict[str, Any] | None = None
        self._trace = trace
        self._t0 = 0.0

    def annotate(self, **meta: Any) -> None:
        """Attach key/value metadata (e.g. a worker pid) to the span."""
        if self.meta is None:
            self.meta = {}
        self.meta.update(meta)

    def __enter__(self) -> "Span":
        trace = self._trace
        self._t0 = time.perf_counter()
        if self.start_s is None:
            self.start_s = self._t0 - trace._base
        trace._stack.append(self.index)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.duration_s += time.perf_counter() - self._t0
        self.count += 1
        stack = self._trace._stack
        if stack and stack[-1] == self.index:
            stack.pop()
        return False

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "parent": self.parent,
            "start_s": round(self.start_s or 0.0, 9),
            "duration_s": round(self.duration_s, 9),
            "count": self.count,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms x{self.count})"


class Trace:
    """One request's span tree, owned by a single thread/context.

    Spans are stored flat (``parent`` is an index into :attr:`spans`, ``-1``
    for roots) so exporting across process boundaries and grafting worker
    spans back is a matter of index remapping, not object graphs.
    """

    __slots__ = (
        "trace_id",
        "name",
        "started_wall",
        "spans",
        "max_spans",
        "dropped_spans",
        "duration_s",
        "error",
        "_base",
        "_stack",
        "_agg",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else os.urandom(8).hex()
        self.name = name
        self.started_wall = time.time()
        self._base = time.perf_counter()
        self.spans: list[Span] = []
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.duration_s = 0.0
        self.error: str | None = None
        self._stack: list[int] = []
        self._agg: dict[tuple[str, int], Span] = {}
        self._token: object | None = None

    def span(self, name: str) -> "Span | _NoopSpan":
        """The (aggregated) span named ``name`` under the open parent."""
        parent = self._stack[-1] if self._stack else -1
        key = (name, parent)
        existing = self._agg.get(key)
        if existing is not None:
            return existing
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return _NOOP_SPAN
        created = Span(name, len(self.spans), parent, self)
        self.spans.append(created)
        self._agg[key] = created
        return created

    def finish(self) -> None:
        """Seal the trace: record its total duration."""
        self.duration_s = time.perf_counter() - self._base

    def phase_breakdown(self) -> tuple[PhaseTiming, ...]:
        """Per-phase totals (grouped by span name, first-seen order)."""
        totals: dict[str, list[float]] = {}
        order: list[str] = []
        for node in self.spans:
            entry = totals.get(node.name)
            if entry is None:
                entry = totals[node.name] = [0.0, 0]
                order.append(node.name)
            entry[0] += node.duration_s
            entry[1] += node.count
        return tuple(
            PhaseTiming(name, round(totals[name][0], 9), int(totals[name][1]))
            for name in order
        )

    def export_spans(self) -> list[tuple]:
        """The spans as plain picklable tuples (for cross-process shipping)."""
        return [
            (node.name, node.parent, node.start_s or 0.0, node.duration_s, node.count, node.meta)
            for node in self.spans
        ]

    def graft(
        self, exported: list[tuple], parent_index: int, base_offset_s: float
    ) -> int:
        """Attach spans exported by another process under one of our spans.

        ``base_offset_s`` rebases the foreign spans' trace-relative offsets
        into this trace's timeline (``perf_counter`` is not comparable across
        processes; the caller derives the offset from the exporter's wall
        clock).  Roots of the export (``parent == -1``) become children of
        ``parent_index``.  Returns the number of spans grafted.
        """
        index_map: dict[int, int] = {}
        grafted = 0
        for position, (name, parent, start_s, duration_s, count, meta) in enumerate(exported):
            if len(self.spans) >= self.max_spans:
                self.dropped_spans += len(exported) - position
                break
            mapped_parent = parent_index if parent < 0 else index_map.get(parent, parent_index)
            node = Span(name, len(self.spans), mapped_parent, self)
            node.start_s = base_offset_s + start_s
            node.duration_s = duration_s
            node.count = count
            node.meta = dict(meta) if meta else None
            self.spans.append(node)
            index_map[position] = node.index
            grafted += 1
        return grafted

    def to_dict(self) -> dict[str, Any]:
        """The whole trace as a JSON-ready document."""
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_wall": round(self.started_wall, 6),
            "duration_s": round(self.duration_s, 9),
            "dropped_spans": self.dropped_spans,
            "error": self.error,
            "spans": [node.to_dict() for node in self.spans],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r}, id={self.trace_id}, spans={len(self.spans)})"


def format_trace(trace: "Trace | dict[str, Any]") -> str:
    """Render a trace as an indented phase tree (the ``profile`` CLI output).

    Works on a live :class:`Trace` or its :meth:`Trace.to_dict` form.  The
    footer reports the top-level span total against the trace wall time —
    sequential phases cannot sum past the wall clock, so the two lining up
    is the sanity check that the instrumentation covers the request.
    """
    doc = trace.to_dict() if isinstance(trace, Trace) else trace
    spans = doc.get("spans", [])
    children: dict[int, list[int]] = {}
    for position, node in enumerate(spans):
        children.setdefault(node["parent"], []).append(position)
    lines = [
        f"trace {doc['trace_id']} [{doc['name']}] "
        f"wall={doc['duration_s'] * 1000:.3f}ms spans={len(spans)}"
    ]
    if doc.get("error"):
        lines.append(f"  error: {doc['error']}")

    def _emit(position: int, depth: int) -> None:
        node = spans[position]
        count = f" x{node['count']}" if node["count"] > 1 else ""
        meta = ""
        if node.get("meta"):
            rendered = " ".join(f"{key}={value}" for key, value in sorted(node["meta"].items()))
            meta = f" ({rendered})"
        lines.append(
            f"{'  ' * (depth + 1)}{node['name']:<16} "
            f"{node['duration_s'] * 1000:9.3f}ms{count}{meta}"
        )
        for child in children.get(position, []):
            _emit(child, depth + 1)

    for root in children.get(-1, []):
        _emit(root, 0)
    top_level_s = sum(spans[position]["duration_s"] for position in children.get(-1, []))
    lines.append(
        f"phases: {top_level_s * 1000:.3f}ms of {doc['duration_s'] * 1000:.3f}ms wall"
    )
    if doc.get("dropped_spans"):
        lines.append(f"dropped spans: {doc['dropped_spans']}")
    return "\n".join(lines)


class Tracer:
    """Sampling, ring buffer, and metrics feed for request traces.

    Args:
        sample_rate: fraction of requests to trace, clamped to ``[0, 1]``;
            ``None`` reads ``REX_TRACE_SAMPLE`` (default 0.01).  Sampling is
            deterministic 1-in-N (``N = round(1 / rate)``) so benchmarks and
            tests are reproducible without seeding.
        capacity: finished traces to keep for ``/debug/traces``; ``None``
            reads ``REX_TRACE_BUFFER`` (default 256).
        max_spans: span cap per trace (further spans are counted, not kept).
        metrics: optional :class:`~repro.service.metrics.MetricsRegistry`;
            when present every finished trace feeds per-phase histograms
            (``obs.phase_seconds{phase=...}``) and a per-operation trace
            duration histogram (``obs.trace_seconds{op=...}``).
    """

    def __init__(
        self,
        sample_rate: float | None = None,
        capacity: int | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
        metrics: Any = None,
    ) -> None:
        if sample_rate is None:
            sample_rate = float(os.environ.get("REX_TRACE_SAMPLE", DEFAULT_SAMPLE_RATE))
        self.sample_rate = min(1.0, max(0.0, float(sample_rate)))
        self._every = round(1.0 / self.sample_rate) if self.sample_rate > 0 else 0
        if capacity is None:
            capacity = int(os.environ.get("REX_TRACE_BUFFER", DEFAULT_BUFFER_CAPACITY))
        self.max_spans = max_spans
        self.metrics = metrics
        self._ring: deque[Trace] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        # one C-level bool per request — itertools.cycle.__next__ is atomic
        # in CPython, and a precomputed pattern is cheaper on the unsampled
        # hot path than a counter tick plus modulo; the Nth request of every
        # window of N is the sampled one, deterministically
        self._sample = (
            itertools.cycle([False] * (self._every - 1) + [True]).__next__
            if self._every
            else None
        )
        self._started = 0
        self._finished = 0
        self._dropped_spans = 0
        self._phase_hist: dict[str, Any] = {}
        self._trace_hist: dict[str, Any] = {}

    # -- lifecycle ----------------------------------------------------------

    def maybe_start(self, name: str, force: bool = False) -> Trace | None:
        """Start and activate a trace if this request is sampled.

        Returns ``None`` (and touches almost nothing) when the request is
        not sampled *or* a trace is already active in this context — nested
        operations join the enclosing trace through :func:`span` instead of
        opening their own.  The caller that receives a trace must pass it to
        :meth:`finish`.
        """
        if not force:
            sample = self._sample
            if sample is None or not sample():
                return None
        if _ACTIVE.get() is not None:
            return None
        trace = Trace(name, max_spans=self.max_spans)
        trace._token = _ACTIVE.set(trace)
        with self._lock:
            self._started += 1
        return trace

    def finish(self, trace: Trace, error: str | None = None) -> None:
        """Seal ``trace``, deposit it in the ring, feed the histograms."""
        if trace._token is not None:
            _ACTIVE.reset(trace._token)  # type: ignore[arg-type]
            trace._token = None
        trace.error = error
        trace.finish()
        breakdown = trace.phase_breakdown()
        with self._lock:
            self._ring.append(trace)
            self._finished += 1
            self._dropped_spans += trace.dropped_spans
        metrics = self.metrics
        if metrics is not None:
            for name, seconds, _count in breakdown:
                hist = self._phase_hist.get(name)
                if hist is None:
                    hist = self._phase_hist[name] = metrics.histogram(
                        f"obs.phase_seconds{{phase={name}}}"
                    )
                hist.observe(seconds)
            hist = self._trace_hist.get(trace.name)
            if hist is None:
                hist = self._trace_hist[trace.name] = metrics.histogram(
                    f"obs.trace_seconds{{op={trace.name}}}"
                )
            hist.observe(trace.duration_s)

    @contextmanager
    def request_trace(self, name: str, force: bool = False) -> Iterator[Trace | None]:
        """Context-manager convenience over :meth:`maybe_start`/:meth:`finish`."""
        trace = self.maybe_start(name, force=force)
        try:
            yield trace
        except BaseException as caught:
            if trace is not None:
                self.finish(trace, error=f"{type(caught).__name__}: {caught}")
                trace = None
            raise
        finally:
            if trace is not None:
                self.finish(trace)

    # -- inspection ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Buffer occupancy and lifetime counters, for ``/healthz`` and stats."""
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "capacity": self._ring.maxlen,
                "occupancy": len(self._ring),
                "started": self._started,
                "finished": self._finished,
                "dropped_spans": self._dropped_spans,
            }

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest finished traces (newest first), JSON-ready."""
        with self._lock:
            traces = list(self._ring)
        traces.reverse()
        if limit is not None:
            traces = traces[: max(0, limit)]
        return [trace.to_dict() for trace in traces]

    def find(self, trace_id: str) -> dict[str, Any] | None:
        """The buffered trace with ``trace_id``, or ``None`` if evicted."""
        with self._lock:
            traces = list(self._ring)
        for trace in reversed(traces):
            if trace.trace_id == trace_id:
                return trace.to_dict()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(sample_rate={self.sample_rate}, "
            f"buffered={len(self._ring)}/{self._ring.maxlen})"
        )
