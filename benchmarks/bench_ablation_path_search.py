"""Ablation A2: unidirectional vs bidirectional vs prioritized path search.

Section 3.2 adapts three path enumeration strategies from the keyword-search
literature.  This ablation isolates the path-enumeration stage (no path union)
and compares both the wall-clock time and the number of partial-path
expansions each strategy performs, per connectedness bucket.

Expected shape: the bidirectional strategies expand far fewer partial paths
than the forward-only PathEnumNaive, and the activation-score prioritisation
of PathEnumPrioritized does not expand more than PathEnumBasic.
"""

from __future__ import annotations

import pytest

from repro.enumeration.path_enum import PATH_ENUM_ALGORITHMS

from conftest import SIZE_LIMIT

LENGTH_LIMIT = SIZE_LIMIT - 1


def _run(kb, pairs, algorithm):
    expansions = 0
    paths = 0
    for pair in pairs:
        result = algorithm(kb, pair.v_start, pair.v_end, LENGTH_LIMIT)
        expansions += result.stats["expansions"]
        paths += result.num_paths
    return expansions, paths


@pytest.mark.parametrize("bucket", ["low", "medium", "high"])
@pytest.mark.parametrize("name", ["naive", "basic", "prioritized"])
def test_ablation_path_search(benchmark, bench_kb, bench_pairs, bucket, name):
    algorithm = PATH_ENUM_ALGORITHMS[name]
    pairs = bench_pairs[bucket]
    benchmark.group = f"ablation-path-search-{bucket}"
    benchmark.extra_info["algorithm"] = name
    expansions, paths = benchmark.pedantic(
        _run, args=(bench_kb, pairs, algorithm), rounds=1, iterations=1
    )
    benchmark.extra_info["partial_path_expansions"] = expansions
    benchmark.extra_info["paths_found"] = paths


@pytest.mark.parametrize("bucket", ["low", "medium", "high"])
def test_ablation_bidirectional_expands_less(bench_kb, bench_pairs, bucket):
    """Bidirectional search performs no more expansions than forward-only search."""
    pairs = bench_pairs[bucket]
    naive_total, _ = _run(bench_kb, pairs, PATH_ENUM_ALGORITHMS["naive"])
    basic_total, _ = _run(bench_kb, pairs, PATH_ENUM_ALGORITHMS["basic"])
    assert basic_total <= naive_total
