"""Tests for path explanation enumeration (Section 3.2)."""

from __future__ import annotations

import pytest

from repro.enumeration.path_enum import (
    PATH_ENUM_ALGORITHMS,
    PathInstance,
    PathStep,
    group_paths_into_explanations,
    path_enum_basic,
    path_enum_naive,
    path_enum_prioritized,
)
from repro.errors import EnumerationError

ALGORITHMS = [path_enum_naive, path_enum_basic, path_enum_prioritized]


def _path_signatures(result):
    signatures = set()
    for explanation in result.explanations:
        for instance in explanation.instances:
            signatures.add((explanation.pattern.canonical_key, instance.items()))
    return signatures


class TestValidation:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rejects_zero_length_limit(self, paper_kb, algorithm):
        with pytest.raises(EnumerationError):
            algorithm(paper_kb, "brad_pitt", "angelina_jolie", 0)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rejects_identical_endpoints(self, paper_kb, algorithm):
        with pytest.raises(EnumerationError):
            algorithm(paper_kb, "brad_pitt", "brad_pitt", 3)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rejects_unknown_entities(self, paper_kb, algorithm):
        with pytest.raises(EnumerationError):
            algorithm(paper_kb, "ghost", "brad_pitt", 3)


class TestBasicBehaviour:
    def test_direct_spouse_path_found(self, paper_kb):
        result = path_enum_basic(paper_kb, "tom_cruise", "nicole_kidman", 1)
        assert result.num_paths == 1
        (explanation,) = result.explanations
        assert explanation.pattern.num_edges == 1
        assert explanation.pattern.labels() == {"spouse"}

    def test_costar_paths_grouped_into_one_pattern(self, paper_kb):
        result = path_enum_basic(paper_kb, "kate_winslet", "leonardo_dicaprio", 2)
        costar = [
            explanation
            for explanation in result.explanations
            if explanation.pattern.labels() == {"starring"}
        ]
        assert len(costar) == 1
        assert costar[0].num_instances == 2  # titanic and revolutionary_road

    def test_all_results_are_paths_with_instances(self, paper_kb):
        result = path_enum_prioritized(paper_kb, "brad_pitt", "angelina_jolie", 4)
        assert result.explanations
        for explanation in result.explanations:
            assert explanation.pattern.is_path()
            assert explanation.num_instances > 0
            assert explanation.pattern.num_edges <= 4

    def test_length_limit_is_respected(self, paper_kb):
        short = path_enum_basic(paper_kb, "brad_pitt", "angelina_jolie", 2)
        longer = path_enum_basic(paper_kb, "brad_pitt", "angelina_jolie", 4)
        assert longer.num_paths > short.num_paths
        assert all(e.pattern.num_edges <= 2 for e in short.explanations)

    def test_no_paths_between_disconnected_entities(self, paper_kb):
        result = path_enum_basic(paper_kb, "brad_pitt", "helen_hunt", 2)
        assert result.num_paths == 0
        assert result.explanations == []

    def test_path_instances_are_simple(self, paper_kb):
        result = path_enum_naive(paper_kb, "brad_pitt", "tom_cruise", 4)
        for explanation in result.explanations:
            for instance in explanation.instances:
                assert instance.is_injective()

    def test_stats_counters_populated(self, paper_kb):
        for algorithm in ALGORITHMS:
            result = algorithm(paper_kb, "brad_pitt", "angelina_jolie", 3)
            assert result.stats["paths"] == result.num_paths
            assert result.stats["expansions"] > 0


class TestAlgorithmAgreement:
    @pytest.mark.parametrize("length_limit", [1, 2, 3, 4])
    def test_all_algorithms_find_the_same_paths(self, paper_kb, length_limit):
        results = [
            algorithm(paper_kb, "brad_pitt", "angelina_jolie", length_limit)
            for algorithm in ALGORITHMS
        ]
        signatures = [_path_signatures(result) for result in results]
        assert signatures[0] == signatures[1] == signatures[2]

    @pytest.mark.parametrize(
        "pair",
        [
            ("kate_winslet", "leonardo_dicaprio"),
            ("tom_cruise", "will_smith"),
            ("james_cameron", "kate_winslet"),
            ("mel_gibson", "helen_hunt"),
        ],
    )
    def test_agreement_on_paper_pairs(self, paper_kb, pair):
        results = [algorithm(paper_kb, *pair, 4) for algorithm in ALGORITHMS]
        signatures = [_path_signatures(result) for result in results]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_agreement_on_synthetic_kb(self, tiny_synthetic_kb):
        persons = tiny_synthetic_kb.entities_of_type("person")
        pair = (persons[0], persons[5])
        results = [algorithm(tiny_synthetic_kb, *pair, 3) for algorithm in ALGORITHMS]
        signatures = [_path_signatures(result) for result in results]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_prioritized_expands_no_more_than_naive(self, paper_kb):
        naive = path_enum_naive(paper_kb, "brad_pitt", "angelina_jolie", 4)
        prioritized = path_enum_prioritized(paper_kb, "brad_pitt", "angelina_jolie", 4)
        assert prioritized.stats["expansions"] <= naive.stats["expansions"]

    def test_registry_contains_three_algorithms(self):
        assert set(PATH_ENUM_ALGORITHMS) == {"naive", "basic", "prioritized"}


class TestGrouping:
    def test_group_paths_into_explanations(self):
        step = PathStep("movie_1", "starring", True, False)
        step_end = PathStep("end_person", "starring", True, True)
        first = PathInstance("start_person", (step, step_end))
        second = PathInstance(
            "start_person",
            (PathStep("movie_2", "starring", True, False), step_end),
        )
        explanations = group_paths_into_explanations([first, second])
        assert len(explanations) == 1
        assert explanations[0].num_instances == 2

    def test_different_label_sequences_stay_separate(self):
        costar = PathInstance(
            "a",
            (
                PathStep("m", "starring", True, False),
                PathStep("b", "starring", True, True),
            ),
        )
        spouse = PathInstance("a", (PathStep("b", "spouse", False, True),))
        explanations = group_paths_into_explanations([costar, spouse])
        assert len(explanations) == 2
