"""Direct evaluation of explanation patterns against the knowledge base.

Given a pattern and a target entity pair, :func:`match_pattern` enumerates all
explanation instances (Definition 2) by backtracking over the pattern's
variables.  The path-union algorithms of Section 3 avoid calling this on every
candidate — they derive instances of merged patterns from the instances of the
covering path patterns — but the matcher remains essential:

* the naive baseline enumerator (Algorithm 1) uses it to evaluate candidates,
* distributional measures evaluate the *same pattern* for many different
  target pairs, and
* the test suite uses it as a correctness oracle for PathUnion.

The matcher compiles each pattern into an *evaluation plan* (cached across
calls): a variable order plus, per variable, the incident edges whose other
endpoint is bound earlier in the order.  Candidate generation then reduces to
intersecting the knowledge base's ``(label, orientation)`` adjacency indexes,
and a per-call memo keyed on the bound frontier lets sibling branches of the
backtracking tree share candidate sets instead of recomputing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.core.instance import ExplanationInstance
from repro.core.pattern import END, START, ExplanationPattern
from repro.kb.compiled import ORIENT_CODE, CompiledKB
from repro.kb.graph import KnowledgeBase
from repro.resilience.deadline import current_deadline

__all__ = ["match_pattern", "iter_matches", "count_matches", "has_match"]


def _variable_order(pattern: ExplanationPattern) -> list[str]:
    """Order non-target variables so each is adjacent to an earlier variable.

    Starting from the two bound target variables, repeatedly pick the unbound
    variable with the most edges to already-ordered variables.  This keeps the
    backtracking search propagating constraints as early as possible.
    """
    ordered: list[str] = [START, END]
    placed = {START, END}
    remaining = set(pattern.non_target_variables)
    while remaining:
        def connectivity(variable: str) -> tuple[int, int, str]:
            edges_to_placed = sum(
                1
                for edge in pattern.edges_of(variable)
                if edge.other(variable) in placed
            )
            return (edges_to_placed, pattern.degree(variable), variable)

        # max connectivity first; the variable name breaks ties deterministically
        best = max(remaining, key=connectivity)
        ordered.append(best)
        placed.add(best)
        remaining.remove(best)
    return ordered


@dataclass(frozen=True)
class _VariableStep:
    """Plan entry for one variable of the backtracking order.

    Attributes:
        variable: the variable bound at this step.
        anchors: ``(anchor_variable, label, orientation)`` triples — one per
            pattern edge from ``variable`` to an earlier-bound variable, with
            the orientation expressed from the anchor's point of view so the
            knowledge base's secondary index can answer it directly.
    """

    variable: str
    anchors: tuple[tuple[str, str, str], ...]


@dataclass(frozen=True)
class _PatternPlan:
    """A compiled pattern: target-edge checks plus per-variable index probes."""

    # Edges between START and END, checked once up front:
    # (source_variable, target_variable, label, direction)
    target_checks: tuple[tuple[str, str, str, str], ...]
    steps: tuple[_VariableStep, ...]


def _anchor_orientation(edge, anchor: str) -> str:
    """Orientation of ``edge`` as seen from ``anchor`` for the index lookup."""
    if not edge.directed:
        return "undirected"
    return "out" if edge.source == anchor else "in"


@lru_cache(maxsize=4096)
def _pattern_plan(pattern: ExplanationPattern) -> _PatternPlan:
    """Compile ``pattern`` into its (cached) evaluation plan."""
    target_checks = tuple(
        (edge.source, edge.target, edge.label, "out" if edge.directed else "any")
        for edge in pattern.edges_of(START)
        if edge.other(START) == END
    )
    order = _variable_order(pattern)[2:]
    bound = {START, END}
    steps: list[_VariableStep] = []
    for variable in order:
        anchors = tuple(
            (edge.other(variable), edge.label, _anchor_orientation(edge, edge.other(variable)))
            for edge in pattern.edges_of(variable)
            if edge.other(variable) in bound
        )
        steps.append(_VariableStep(variable, anchors))
        bound.add(variable)
    return _PatternPlan(target_checks, tuple(steps))


def iter_matches(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    v_end: str,
    limit: int | None = None,
) -> Iterator[ExplanationInstance]:
    """Yield instances of ``pattern`` for the target pair, lazily.

    Args:
        kb: the knowledge base.
        pattern: the explanation pattern to evaluate.
        v_start: entity bound to the start variable.
        v_end: entity bound to the end variable.
        limit: stop after this many instances (``None`` = exhaustive).
    """
    if not kb.has_entity(v_start) or not kb.has_entity(v_end):
        return
    if isinstance(kb, CompiledKB):
        yield from _iter_matches_compiled(kb, pattern, v_start, v_end, limit)
        return
    plan = _pattern_plan(pattern)
    targets = {START: v_start, END: v_end}
    for source, target, label, direction in plan.target_checks:
        if not kb.has_edge(targets[source], targets[target], label, direction):
            return

    binding: dict[str, str] = {START: v_start, END: v_end}
    steps = plan.steps
    produced = 0
    deadline = current_deadline()
    # Memo shared across sibling branches: raw candidate sets depend only on
    # the step and the entities bound to its anchor variables — not on the
    # rest of the frontier — so branches differing elsewhere reuse them.
    memo: dict[tuple, frozenset[str]] = {}

    def raw_candidates(index: int) -> frozenset[str] | None:
        step = steps[index]
        if not step.anchors:
            return None
        key = (index,) + tuple(binding[anchor] for anchor, _, _ in step.anchors)
        cached = memo.get(key)
        if cached is not None:
            return cached
        candidates: set[str] | None = None
        for anchor, label, orientation in step.anchors:
            reachable = kb.neighbor_ids(binding[anchor], label, orientation)
            if candidates is None:
                candidates = set(reachable)
            else:
                candidates.intersection_update(reachable)
            if not candidates:
                break
        result = frozenset(candidates) if candidates else frozenset()
        memo[key] = result
        return result

    def backtrack(index: int) -> Iterator[ExplanationInstance]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if deadline is not None:
            deadline.tick()
        if index == len(steps):
            produced += 1
            yield ExplanationInstance(binding)
            return
        raw = raw_candidates(index)
        if raw is None:
            # No incident edge touches a bound variable (disconnected pattern):
            # fall back to all entities, as the naive matcher did.
            candidates = set(kb.entities) - {v_start, v_end} - set(binding.values())
        else:
            # Non-target variables must not map onto the target entities, and
            # the mapping must be injective (instances are KB subgraphs).
            candidates = set(raw)
            candidates.discard(v_start)
            candidates.discard(v_end)
            candidates.difference_update(binding.values())
        variable = steps[index].variable
        for candidate in sorted(candidates):
            binding[variable] = candidate
            yield from backtrack(index + 1)
            del binding[variable]
            if limit is not None and produced >= limit:
                return

    yield from backtrack(0)


def _iter_matches_compiled(
    ckb: CompiledKB,
    pattern: ExplanationPattern,
    v_start: str,
    v_end: str,
    limit: int | None,
) -> Iterator[ExplanationInstance]:
    """Integer-handle frontier expansion of the pattern plan.

    Candidate sets are intersections of CSR plane row *sets* (frozensets of
    handles), target-edge checks probe the packed membership hash, and the
    deterministic enumeration order is reproduced by sorting candidate
    handles by the compiled sort-rank table — the rank of a handle equals
    the rank of its entity id in ``sorted(...)``, so the yielded instances
    (decoded at the yield boundary) match the dict backend's exactly.
    """
    plan = _pattern_plan(pattern)
    handles = ckb.handles
    names = ckb.names
    start_h = handles[v_start]
    end_h = handles[v_end]
    targets = {START: v_start, END: v_end}
    for source, target, label, direction in plan.target_checks:
        if not ckb.has_edge(targets[source], targets[target], label, direction):
            return

    label_code = ckb.label_code
    sort_rank = ckb.sort_rank
    binding: dict[str, int] = {START: start_h, END: end_h}
    steps = plan.steps
    produced = 0
    deadline = current_deadline()
    memo: dict[tuple, frozenset[int]] = {}

    def raw_candidates(index: int) -> frozenset[int] | None:
        step = steps[index]
        if not step.anchors:
            return None
        key = (index,) + tuple(binding[anchor] for anchor, _, _ in step.anchors)
        cached = memo.get(key)
        if cached is not None:
            return cached
        candidates: set[int] | frozenset[int] | None = None
        for anchor, label, orientation in step.anchors:
            code = label_code.get(label)
            if code is None:
                candidates = frozenset()
                break
            reachable = ckb.plane_row_set(
                code * 3 + ORIENT_CODE[orientation], binding[anchor]
            )
            if candidates is None:
                candidates = reachable
            else:
                candidates = candidates & reachable
            if not candidates:
                break
        result = frozenset(candidates) if candidates else frozenset()
        memo[key] = result
        return result

    def backtrack(index: int) -> Iterator[ExplanationInstance]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if deadline is not None:
            deadline.tick()
        if index == len(steps):
            produced += 1
            yield ExplanationInstance(
                {variable: names[handle] for variable, handle in binding.items()}
            )
            return
        raw = raw_candidates(index)
        if raw is None:
            # No incident edge touches a bound variable (disconnected pattern):
            # fall back to all entities, as the dict matcher does.
            candidates = set(range(len(names)))
            candidates.discard(start_h)
            candidates.discard(end_h)
            candidates.difference_update(binding.values())
        else:
            candidates = set(raw)
            candidates.discard(start_h)
            candidates.discard(end_h)
            candidates.difference_update(binding.values())
        variable = steps[index].variable
        for candidate in sorted(candidates, key=sort_rank.__getitem__):
            binding[variable] = candidate
            yield from backtrack(index + 1)
            del binding[variable]
            if limit is not None and produced >= limit:
                return

    yield from backtrack(0)


def match_pattern(
    kb: KnowledgeBase,
    pattern: ExplanationPattern,
    v_start: str,
    v_end: str,
    limit: int | None = None,
) -> list[ExplanationInstance]:
    """All instances of ``pattern`` for ``(v_start, v_end)`` (Definition 2)."""
    return list(iter_matches(kb, pattern, v_start, v_end, limit=limit))


def count_matches(
    kb: KnowledgeBase, pattern: ExplanationPattern, v_start: str, v_end: str
) -> int:
    """Number of instances of ``pattern`` for the target pair."""
    return sum(1 for _ in iter_matches(kb, pattern, v_start, v_end))


def has_match(
    kb: KnowledgeBase, pattern: ExplanationPattern, v_start: str, v_end: str
) -> bool:
    """Whether the pattern has at least one instance for the target pair."""
    for _ in iter_matches(kb, pattern, v_start, v_end, limit=1):
        return True
    return False
