"""The explanation-serving subsystem: engine, cache, metrics, HTTP API.

The library facade (:class:`repro.Rex`) answers one pair at a time; this
package turns it into a long-lived server whose unit of work is a *request
stream*:

* :mod:`repro.service.cache` — a versioned LRU result cache; KB mutations
  invalidate stale entries for free because the KB version is part of the key;
* :mod:`repro.service.engine` — :class:`ExplanationEngine`, the concurrent
  wrapper adding caching, single-flight request coalescing, live KB updates
  and startup warmup;
* :mod:`repro.service.metrics` — request counters and latency histograms;
* :mod:`repro.service.serialize` — the JSON wire shapes;
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer`` JSON API
  (``/explain``, ``/explain/batch``, ``/healthz``, ``/metrics``,
  ``/kb/edges``).

Quick start::

    from repro.datasets.paper_example import paper_example_kb, PAPER_PAIRS
    from repro.service import ExplanationEngine, create_server, run_in_thread

    engine = ExplanationEngine(paper_example_kb())
    engine.warmup(PAPER_PAIRS)
    server = create_server(engine, port=0)     # ephemeral port
    run_in_thread(server)
    print(server.url)                          # e.g. http://127.0.0.1:54321

See ``docs/serving.md`` for the full API reference and cache semantics.
"""

from __future__ import annotations

from repro.parallel import WorkerCrashError
from repro.service.cache import CacheStats, VersionedLRUCache
from repro.service.engine import (
    DEFAULT_MEASURE,
    ExplainOutcome,
    ExplanationEngine,
)
from repro.service.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.service.serialize import (
    explanation_to_dict,
    instance_to_dict,
    outcome_to_dict,
    pattern_to_dict,
    ranked_to_dict,
)
from repro.service.server import (
    ExplanationServer,
    create_server,
    run_in_thread,
    serve,
)

__all__ = [
    "CacheStats",
    "VersionedLRUCache",
    "WorkerCrashError",
    "DEFAULT_MEASURE",
    "ExplainOutcome",
    "ExplanationEngine",
    "Counter",
    "LatencyHistogram",
    "MetricsRegistry",
    "explanation_to_dict",
    "instance_to_dict",
    "outcome_to_dict",
    "pattern_to_dict",
    "ranked_to_dict",
    "ExplanationServer",
    "create_server",
    "run_in_thread",
    "serve",
]
