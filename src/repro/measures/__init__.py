"""Interestingness measures for ranking explanations (Section 4)."""

from repro.measures.aggregate import CountMeasure, MonocountMeasure, aggregate_for_pair
from repro.measures.base import Measure, Monotonicity
from repro.measures.combined import (
    LexicographicMeasure,
    size_plus_local_dist,
    size_plus_monocount,
)
from repro.measures.distributional import (
    Distribution,
    GlobalDistributionMeasure,
    LocalDistributionMeasure,
    local_aggregate_distribution,
)
from repro.measures.structural import RandomWalkMeasure, SizeMeasure, effective_conductance

__all__ = [
    "CountMeasure",
    "MonocountMeasure",
    "aggregate_for_pair",
    "Measure",
    "Monotonicity",
    "LexicographicMeasure",
    "size_plus_local_dist",
    "size_plus_monocount",
    "Distribution",
    "GlobalDistributionMeasure",
    "LocalDistributionMeasure",
    "local_aggregate_distribution",
    "RandomWalkMeasure",
    "SizeMeasure",
    "effective_conductance",
    "default_measures",
]


def default_measures() -> dict[str, Measure]:
    """The eight measures compared in Table 1 of the paper, by name."""
    return {
        "size": SizeMeasure(),
        "random-walk": RandomWalkMeasure(),
        "count": CountMeasure(),
        "monocount": MonocountMeasure(),
        "local-dist": LocalDistributionMeasure(),
        "global-dist": GlobalDistributionMeasure(),
        "size+monocount": size_plus_monocount(),
        "size+local-dist": size_plus_local_dist(),
    }
